"""Unit tests for the pluggable event queues (repro.sim.equeue).

The heap is the bit-identity reference; every behavioural test here runs
under both schedulers and the calendar-specific tests exercise the
machinery the heap does not have: bucket walking, gap jumps, adaptive
resize, and the batched extraction protocol.
"""

import pytest

from repro.sim import (
    CalendarQueue,
    HeapQueue,
    SCHEDULERS,
    SimulationError,
    Simulator,
    make_queue,
)
from repro.sim.sync import Mailbox, SimSemaphore

BOTH = sorted(SCHEDULERS)


# ----------------------------------------------------------------------
# Construction and registry
# ----------------------------------------------------------------------

def test_make_queue_by_name():
    assert isinstance(make_queue("heap"), HeapQueue)
    assert isinstance(make_queue("calendar"), CalendarQueue)


def test_make_queue_passthrough_instance():
    q = HeapQueue()
    assert make_queue(q) is q
    assert Simulator(scheduler=q).queue is q


def test_make_queue_unknown_name():
    with pytest.raises(ValueError, match="calendar.*heap"):
        make_queue("splay")


def test_calendar_rejects_bad_width():
    with pytest.raises(ValueError, match="width"):
        CalendarQueue(width=0.0)


def test_simulator_ctor_is_kw_only():
    with pytest.raises(TypeError):
        Simulator(7)  # simlint: disable=all


@pytest.mark.parametrize("scheduler", BOTH)
def test_stats_shape(scheduler):
    sim = Simulator(scheduler=scheduler)
    sim.timeout(1e-9)
    s = sim.queue.stats()
    assert s["scheduler"] == scheduler
    assert s["live"] == 1 and s["dead"] == 0 and s["size"] == 1
    if scheduler == "calendar":
        assert s["buckets"] == 1
        assert s["bucket_width_s"] == CalendarQueue.DEFAULT_WIDTH
        assert s["resizes"] == 0


# ----------------------------------------------------------------------
# Dispatch order: both queues must produce the heap's schedule
# ----------------------------------------------------------------------

def _dispatch_order(scheduler, delays):
    sim = Simulator(scheduler=scheduler)
    log = []
    for i, d in enumerate(delays):
        ev = sim.timeout(d, name=f"t{i}")
        ev.callbacks.append(lambda e: log.append(e.name))
    sim.run()
    return log


def test_same_order_across_schedulers():
    # Duplicate timestamps, reversed pushes, bucket-boundary straddlers.
    w = CalendarQueue.DEFAULT_WIDTH
    delays = [5 * w, 0.0, w, w, 0.999 * w, 1.001 * w, 0.0, 3.5 * w]
    assert _dispatch_order("heap", delays) == _dispatch_order("calendar", delays)


def test_zero_delay_events_scheduled_during_batch_keep_seq_order():
    logs = {}
    for scheduler in BOTH:
        sim = Simulator(scheduler=scheduler)
        log = []

        def chain(e):
            log.append(e.name)
            if len(log) < 6:
                nxt = sim.timeout(0.0, name=f"z{len(log)}")
                nxt.callbacks.append(chain)

        for i in range(3):
            sim.timeout(0.0, name=f"a{i}").callbacks.append(chain)
        sim.run()
        logs[scheduler] = log
    assert logs["heap"] == logs["calendar"]
    assert logs["heap"][:3] == ["a0", "a1", "a2"]


@pytest.mark.parametrize("scheduler", BOTH)
def test_far_future_gap_jump(scheduler):
    # A lone far-future event: the calendar cursor must jump the gap
    # rather than walk millions of empty buckets.
    sim = Simulator(scheduler=scheduler)
    fired = []
    sim.call_after(10.0, fired.append, "far")
    sim.call_after(1e-9, fired.append, "near")
    sim.run()
    assert fired == ["near", "far"]
    assert sim.now == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Calendar resize machinery
# ----------------------------------------------------------------------

def test_calendar_narrows_under_crowding():
    sim = Simulator(scheduler="calendar")
    q = sim.queue
    w0 = q.bucket_width
    # 600 timers inside one initial bucket: occupancy 600/bucket blows
    # through the narrow threshold at the 513th push.
    for i in range(600):
        sim.timeout((i % 64) * 1e-10)
    assert q.resizes >= 1
    assert q.bucket_width < w0
    assert q.bucket_count > 1
    sim.run()
    assert sim.dispatched == 600


def test_calendar_widens_when_sparse():
    sim = Simulator(scheduler="calendar")
    q = sim.queue
    w0 = q.bucket_width
    # >64 occupied buckets, one entry each, spaced beyond the cursor's
    # adjacent-key window: a few long gap jumps trigger a widen.
    for i in range(100):
        sim.timeout(i * 1e-5)
    assert q.bucket_count == 100
    sim.run()
    assert q.resizes >= 1
    assert q.bucket_width > w0
    assert sim.dispatched == 100


def test_calendar_resize_preserves_heap_schedule():
    w = CalendarQueue.DEFAULT_WIDTH
    delays = [(i % 64) * 1e-10 for i in range(600)]  # forces a narrow
    delays += [i * 1e-6 for i in range(100)]         # then sparse tail
    delays += [5 * w, 0.0, 2.5 * w]
    assert _dispatch_order("heap", delays) == _dispatch_order("calendar", delays)


# ----------------------------------------------------------------------
# Cancellation books
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_cancel_storm_books_balance(scheduler):
    sim = Simulator(scheduler=scheduler)
    evs = [sim.timeout(i * 1e-9) for i in range(256)]
    for ev in evs[::2]:
        assert ev.cancel()
    q = sim.queue
    assert q.live + q.dead == q.size
    sim.run()
    assert sim.dispatched == 128
    assert sim.skipped == 128
    assert sim.dead_events == 0
    assert sim.queued_events == 0


@pytest.mark.parametrize("scheduler", BOTH)
def test_compaction_sweeps_dead_entries(scheduler):
    sim = Simulator(scheduler=scheduler)
    evs = [sim.timeout(i * 1e-9) for i in range(256)]
    for ev in evs[:130]:
        ev.cancel()
    # The sweep fires at the 129th cancel (dead*2 > size); the 130th
    # then sits as fresh dead weight awaiting the next trigger.
    assert sim.compactions == 1
    assert sim.heap_size == 127
    assert sim.dead_events == 1
    assert sim.skipped == 129


@pytest.mark.parametrize("scheduler", BOTH)
def test_horizon_run_stops_short(scheduler):
    sim = Simulator(scheduler=scheduler)
    fired = []
    sim.call_after(1e-9, fired.append, "early")
    sim.call_after(1.0, fired.append, "late")
    sim.run(until=0.5)
    assert fired == ["early"]
    assert sim.now == 0.5
    assert sim.queued_events == 1
    sim.run()
    assert fired == ["early", "late"]


@pytest.mark.parametrize("scheduler", BOTH)
def test_run_until_event_deadlock(scheduler):
    sim = Simulator(scheduler=scheduler)
    stop = sim.event(name="never")
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=stop)


@pytest.mark.parametrize("scheduler", BOTH)
def test_mid_batch_stop_requeues_tail(scheduler):
    sim = Simulator(scheduler=scheduler)
    log = []
    a = sim.timeout(0.0, name="a")
    a.callbacks.append(lambda e: log.append("a"))
    stop = sim.event(name="stop")
    stop.succeed()
    b = sim.timeout(0.0, name="b")
    b.callbacks.append(lambda e: log.append("b"))
    c = sim.timeout(0.0, name="c")
    c.callbacks.append(lambda e: log.append("c"))
    sim.run(until=stop)
    # a and the stop event dispatched; b and c went back to the queue.
    assert log == ["a"]
    assert sim.queued_events == 2
    assert sim.dispatched == 2
    sim.run()
    assert log == ["a", "b", "c"]


@pytest.mark.parametrize("scheduler", BOTH)
def test_inflight_cancel_resolved_on_early_stop(scheduler):
    sim = Simulator(scheduler=scheduler)
    stop = sim.event(name="stop")
    stop.succeed()
    victim = sim.timeout(0.0, name="victim")
    stop.add_callback(lambda e: victim.cancel())
    survivor = sim.timeout(0.0, name="survivor")
    fired = []
    survivor.callbacks.append(lambda e: fired.append("survivor"))
    sim.run(until=stop)
    q = sim.queue
    assert q.live + q.dead == q.size
    assert sim.dead_events == 0  # in-flight cancel resolved as a skip
    assert sim.skipped == 1
    sim.run()
    assert fired == ["survivor"]


@pytest.mark.parametrize("scheduler", BOTH)
def test_queued_events_sees_batch_siblings(scheduler):
    # The progress watchdog's idle check runs inside callbacks; an
    # undispatched same-timestamp sibling must still count as queued.
    sim = Simulator(scheduler=scheduler)
    seen = []
    a = sim.timeout(0.0, name="a")
    a.callbacks.append(lambda e: seen.append(sim.queued_events))
    b = sim.timeout(0.0, name="b")
    b.callbacks.append(lambda e: seen.append(sim.queued_events))
    sim.run()
    assert seen == [1, 0]


# ----------------------------------------------------------------------
# step() and the batched extraction protocol
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_step_dispatches_one_event_of_a_tie(scheduler):
    sim = Simulator(scheduler=scheduler)
    log = []
    for name in ("x", "y"):
        ev = sim.timeout(0.0, name=name)
        ev.callbacks.append(lambda e: log.append(e.name))
    sim.step()
    assert log == ["x"]
    assert sim.queued_events == 1
    sim.step()
    assert log == ["x", "y"]
    with pytest.raises(IndexError):
        sim.step()


@pytest.mark.parametrize("scheduler", BOTH)
def test_pop_batch_singleton_is_bare_entry(scheduler):
    q = make_queue(scheduler)

    class _Ev:
        _cancelled = False

    q.push(1e-9, 0, _Ev())
    q.push(2e-9, 1, _Ev())
    q.push(2e-9, 2, _Ev())
    first = q.pop_batch()
    assert type(first) is tuple and first[0] == 1e-9
    tie = q.pop_batch()
    assert type(tie) is list and [e[1] for e in tie] == [1, 2]
    assert q.pop_batch() is None


# ----------------------------------------------------------------------
# Timeout pooling
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_pool_recycles_unreferenced_timeouts(scheduler):
    sim = Simulator(scheduler=scheduler)
    done = []

    def chain(n):
        def cb(_ev):
            if n:
                sim.timeout(1e-9).callbacks.append(chain(n - 1))
            else:
                done.append(True)
        return cb

    sim.timeout(1e-9).callbacks.append(chain(50))
    sim.run()
    assert done == [True]
    assert sim.pool_hits > 0


@pytest.mark.parametrize("scheduler", BOTH)
def test_pooled_timeout_rejects_negative_delay(scheduler):
    sim = Simulator(scheduler=scheduler)
    sim.timeout(1e-9)
    sim.run()  # leaves a pooled Timeout behind
    with pytest.raises(ValueError):
        sim.timeout(-1e-9)


# ----------------------------------------------------------------------
# sync primitives vs cancelled waiters
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_semaphore_release_skips_cancelled_waiter(scheduler):
    sim = Simulator(scheduler=scheduler)
    sem = SimSemaphore(sim, value=1, name="s")
    assert sem.acquire().triggered
    dead = sem.acquire()
    live = sem.acquire()
    dead.cancel()
    sem.release()
    assert live.triggered  # permit skipped the cancelled waiter
    sem.release()
    assert sem.value == 1  # no waiters left: permit returns to the pool


@pytest.mark.parametrize("scheduler", BOTH)
def test_mailbox_put_skips_cancelled_getter(scheduler):
    sim = Simulator(scheduler=scheduler)
    box = Mailbox(sim, name="m")
    dead = box.get()
    live = box.get()
    dead.cancel()
    box.put("payload")
    assert live.triggered and live.value == "payload"
    box.put("queued")
    assert len(box) == 1  # no live getters: the item is stored, not lost
