"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(1e-6)
        seen.append(sim.now)
        yield sim.timeout(2e-6)
        seen.append(sim.now)

    sim.process(proc())
    sim.run()
    assert seen == [pytest.approx(1e-6), pytest.approx(3e-6)]


def test_timeout_value_delivery():
    sim = Simulator()
    out = {}

    def proc():
        out["v"] = yield sim.timeout(1e-9, value="payload")

    sim.process(proc())
    sim.run()
    assert out["v"] == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, fired.append, "a")
    sim.call_after(3.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run(until=4.0)
    assert fired == ["a", "b"]


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1e-3)
        return 42

    p = sim.process(proc())
    assert sim.run(until=p) == 42
    assert sim.now == pytest.approx(1e-3)


def test_process_waits_on_process():
    sim = Simulator()
    order = []

    def child():
        yield sim.timeout(5e-6)
        order.append("child")
        return "res"

    def parent():
        res = yield sim.process(child())
        order.append("parent")
        assert res == "res"

    sim.process(parent())
    sim.run()
    assert order == ["child", "parent"]


def test_event_succeed_resumes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield sim.timeout(1.0)
        ev.succeed("x")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == ["x"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_throws_into_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    def firer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("dead")

    sim.process(bad())
    with pytest.raises(SimulationError, match="dead"):
        sim.run()


def test_deadlock_detected_when_waiting_on_event():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never fires

    p = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=p)


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42  # simlint: disable=yield-discipline (the point of this test)

    sim.process(bad())
    with pytest.raises(SimulationError, match="only Event"):
        sim.run()


def test_same_time_events_fifo_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_after(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_any_of_fires_on_first():
    sim = Simulator()
    out = {}

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(2.0, value="slow")
        out["res"] = yield sim.any_of([t1, t2])
        out["t"] = sim.now

    sim.process(proc())
    sim.run()
    assert list(out["res"].values()) == ["fast"]
    assert out["t"] == pytest.approx(1.0)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    out = {}

    def proc():
        evs = [sim.timeout(float(i), value=i) for i in (1, 3, 2)]
        res = yield sim.all_of(evs)
        out["vals"] = sorted(res.values())
        out["t"] = sim.now

    sim.process(proc())
    sim.run()
    assert out["vals"] == [1, 2, 3]
    assert out["t"] == pytest.approx(3.0)


def test_empty_conditions_fire_immediately():
    sim = Simulator()
    out = []

    def proc():
        yield sim.all_of([])
        yield sim.any_of([])
        out.append(sim.now)

    sim.process(proc())
    sim.run()
    assert out == [0.0]


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Exception as e:
            caught.append(e.cause)
            yield sim.timeout(1.0)

    v = sim.process(victim())

    def killer():
        yield sim.timeout(1.0)
        v.interrupt("reason")

    sim.process(killer())
    sim.run()
    assert caught == ["reason"]


def test_interrupt_terminated_process_raises():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_process_return_value_via_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return {"k": 1}

    p = sim.process(worker())
    sim.run()
    assert p.value == {"k": 1}
    assert p.ok


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_rng_streams_deterministic():
    a = Simulator(seed=7).rng.stream("x").random(5)
    b = Simulator(seed=7).rng.stream("x").random(5)
    c = Simulator(seed=8).rng.stream("x").random(5)
    assert (a == b).all()
    assert not (a == c).all()


def test_rng_streams_independent_by_name():
    sim = Simulator(seed=7)
    a = sim.rng.stream("x").random(5)
    b = sim.rng.stream("y").random(5)
    assert not (a == b).all()


def test_call_after_returns_cancellable_handle():
    sim = Simulator()
    fired = []
    handle = sim.call_after(1.0, fired.append, "x")
    assert handle.cancel()
    sim.run()
    assert fired == []
