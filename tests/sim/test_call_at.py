"""The deprecated ``Simulator.call_at`` alias: still works, but warns."""

import pytest

from repro.sim import Simulator


def test_call_at_warns_deprecation():
    sim = Simulator(seed=0)
    with pytest.warns(DeprecationWarning, match="renamed to call_after"):
        sim.call_at(1e-6, lambda: None)


def test_call_at_still_schedules_after_relative_delay():
    sim = Simulator(seed=0)
    fired = []
    with pytest.warns(DeprecationWarning):
        sim.call_at(5e-6, fired.append, "x")
    assert fired == []
    sim.run()
    assert fired == ["x"]
    assert sim.now == pytest.approx(5e-6)


def test_call_at_matches_call_after():
    sim_a, sim_b = Simulator(seed=3), Simulator(seed=3)
    times = {}
    with pytest.warns(DeprecationWarning):
        sim_a.call_at(2e-6, lambda: times.setdefault("at", sim_a.now))
    sim_b.call_after(2e-6, lambda: times.setdefault("after", sim_b.now))
    sim_a.run()
    sim_b.run()
    assert times["at"] == times["after"]
