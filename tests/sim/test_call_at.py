"""``Simulator.call_at`` is gone.

The alias was deprecated when scheduling was renamed to ``call_after``
(the old name implied an absolute timestamp but always took a relative
delay) and the warning promised removal; this pins the removal so the
alias cannot quietly come back.
"""

import pytest

from repro.sim import Simulator


def test_call_at_is_removed():
    sim = Simulator()
    assert not hasattr(Simulator, "call_at")
    with pytest.raises(AttributeError):
        sim.call_at(1e-6, lambda: None)


def test_call_after_is_the_surviving_spelling():
    sim = Simulator()
    fired = []
    sim.call_after(5e-6, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == pytest.approx(5e-6)
