"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locks import LOCK_CLASSES, make_lock
from repro.machine import NS, CostModel, ThreadCtx, nehalem_node
from repro.mpi import ANY_SOURCE, ANY_TAG, Envelope, ReqKind, Request, matches
from repro.mpi.queues import PostedQueue, UnexpectedMsg, UnexpectedQueue
from repro.sim import Simulator

# ----------------------------------------------------------------------
# Envelope matching
# ----------------------------------------------------------------------
concrete_env = st.builds(
    Envelope,
    source=st.integers(0, 7),
    tag=st.integers(0, 15),
    comm=st.integers(0, 2),
)
pattern_env = st.builds(
    Envelope,
    source=st.integers(0, 7) | st.just(ANY_SOURCE),
    tag=st.integers(0, 15) | st.just(ANY_TAG),
    comm=st.integers(0, 2),
)


@given(env=concrete_env)
def test_concrete_envelope_matches_itself(env):
    assert matches(env, env)


@given(env=concrete_env)
def test_full_wildcard_matches_same_comm_only(env):
    assert matches(Envelope(ANY_SOURCE, ANY_TAG, env.comm), env)
    assert not matches(Envelope(ANY_SOURCE, ANY_TAG, env.comm + 1), env)


@given(pattern=pattern_env, env=concrete_env)
def test_match_implies_fieldwise_compatibility(pattern, env):
    if matches(pattern, env):
        assert pattern.comm == env.comm
        assert pattern.source in (ANY_SOURCE, env.source)
        assert pattern.tag in (ANY_TAG, env.tag)


# ----------------------------------------------------------------------
# Queue matching: FIFO-first-match semantics
# ----------------------------------------------------------------------
@given(
    patterns=st.lists(pattern_env, min_size=1, max_size=20),
    env=concrete_env,
)
def test_posted_queue_returns_first_match(patterns, env):
    q = PostedQueue()
    reqs = []
    for p in patterns:
        r = Request(ReqKind.RECV, 0, 0, p, 8, 0.0)
        q.post(r)
        reqs.append(r)
    got, scanned = q.match(env)
    matching = [r for r in reqs if matches(r.envelope, env)]
    if matching:
        assert got is matching[0]
        assert scanned == reqs.index(matching[0]) + 1
        assert len(q) == len(reqs) - 1
    else:
        assert got is None
        assert len(q) == len(reqs)


@given(
    envs=st.lists(concrete_env, min_size=1, max_size=20),
    pattern=pattern_env,
)
def test_unexpected_queue_returns_first_match(envs, pattern):
    q = UnexpectedQueue()
    msgs = [UnexpectedMsg(e, 8, e.source) for e in envs]
    for m in msgs:
        q.add(m)
    got, _ = q.match(pattern)
    matching = [m for m in msgs if matches(pattern, m.envelope)]
    if matching:
        assert got is matching[0]
    else:
        assert got is None


# ----------------------------------------------------------------------
# Simulator: clock monotonicity under arbitrary workloads
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 1e-3), min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_clock_monotone_under_random_timeouts(delays):
    sim = Simulator(seed=0)
    stamps = []

    def proc(ds):
        for d in ds:
            yield sim.timeout(d)
            stamps.append(sim.now)

    half = len(delays) // 2
    sim.process(proc(delays[:half] or [0.0]))
    sim.process(proc(delays[half:] or [0.0]))
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == max(stamps)


# ----------------------------------------------------------------------
# Locks: mutual exclusion and completeness under random schedules
# ----------------------------------------------------------------------
@given(
    kind=st.sampled_from(sorted(k for k in LOCK_CLASSES if k != "null")),
    holds=st.lists(st.integers(10, 500), min_size=2, max_size=6),
    gaps=st.lists(st.integers(1, 500), min_size=2, max_size=6),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_lock_exclusion_random_schedules(kind, holds, gaps, seed):
    sim = Simulator(seed=seed)
    machine = nehalem_node()
    lock = make_lock(kind, sim, CostModel())
    n = min(len(holds), len(gaps))
    inside = [0]
    acquired = [0]

    def worker(i):
        ctx = ThreadCtx(machine.core(i % machine.n_cores), name=f"w{i}")
        for _ in range(3):
            yield from lock.acquire(ctx)
            inside[0] += 1
            assert inside[0] == 1, "mutual exclusion violated"
            acquired[0] += 1
            yield sim.timeout(holds[i % len(holds)] * NS)
            inside[0] -= 1
            extra = lock.release(ctx)
            yield sim.timeout(gaps[i % len(gaps)] * NS + extra)

    for i in range(n):
        sim.process(worker(i))
    sim.run()
    assert acquired[0] == 3 * n  # nobody starved forever
    assert lock.owner is None


# ----------------------------------------------------------------------
# Request lifecycle: legal sequences never corrupt the dangling metric
# ----------------------------------------------------------------------
@given(unexpected_hit=st.booleans(), posted_first=st.booleans())
def test_request_dangling_flag_consistency(unexpected_hit, posted_first):
    r = Request(ReqKind.RECV, 0, 0, Envelope(0, 0, 0), 8, 0.0)
    if posted_first and not unexpected_hit:
        r.mark_posted()
    r.mark_complete(1.0)
    assert r.dangling
    r.mark_freed(2.0)
    assert not r.dangling
    assert r.freed


# ----------------------------------------------------------------------
# Cohort lock: bounded bypass (no unbounded socket capture)
# ----------------------------------------------------------------------
@given(
    max_handover=st.integers(1, 12),
    seed=st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_cohort_remote_waiter_bypassed_at_most_max_handover(max_handover, seed):
    """A waiter on the other socket is granted after at most
    ``max_handover`` same-socket grants once it is queued."""
    from repro.locks.cohort import CohortTicketLock

    sim = Simulator(seed=seed)
    machine = nehalem_node()
    lock = CohortTicketLock(sim, CostModel(), max_handover=max_handover)
    grants = []

    # Three local hammering threads on socket 0, one remote on socket 1.
    def local(ctx):
        while sim.now < 40e-6:
            yield from lock.acquire(ctx)
            grants.append(ctx.socket)
            yield sim.timeout(150 * NS)
            extra = lock.release(ctx)
            yield sim.timeout(10 * NS + extra)

    def remote(ctx):
        while sim.now < 40e-6:
            yield from lock.acquire(ctx)
            grants.append(ctx.socket)
            yield sim.timeout(150 * NS)
            extra = lock.release(ctx)
            yield sim.timeout(10 * NS + extra)

    for i in range(3):
        sim.process(local(ThreadCtx(machine.core(i), name=f"l{i}")))
    sim.process(remote(ThreadCtx(machine.core(4), name="r")))
    sim.run()
    # No run of socket-0 grants between socket-1 grants may exceed the
    # bound by more than a small scheduling slack (the remote thread is
    # un-queued briefly after each of its grants).
    longest = run = 0
    for s_ in grants:
        if s_ == 0:
            run += 1
            longest = max(longest, run)
        else:
            run = 0
    assert longest <= max_handover + 3
