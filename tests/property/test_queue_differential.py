"""Differential property tests: heap vs calendar queue (hypothesis).

The heap is the bit-identity reference; the calendar queue must be
indistinguishable from it at the dispatch level.  The harness drives
both schedulers through random schedule/cancel/run interleavings --
including nested scheduling from inside callbacks, same-timestamp ties,
horizon runs and cancel storms -- and asserts:

* **bit-identity** -- the two runs dispatch the same events at exactly
  the same (float-equal) times in the same order;
* **books balance** -- after any interleaving, ``live + dead == size``
  and every scheduled event is eventually dispatched or skipped, with
  Timeout pooling active (pooling must be schedule-neutral, not just
  allocation-neutral).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

NS = 1e-9

#: One root timer: (fire delay ns, cancel?, nested spawn count).
_op = st.tuples(
    st.integers(0, 400),
    st.booleans(),
    st.integers(0, 2),
)


def _run(scheduler, plan, horizon_ns):
    sim = Simulator(seed=0, scheduler=scheduler)
    trace = []
    cancellers = []

    def fire(i, spawn):
        def cb(_ev):
            trace.append((i, sim.now))
            # Nested scheduling from inside a dispatch, including
            # zero-delay events that join the in-flight timestamp.
            for k in range(spawn):
                nested = sim.timeout(k * 7 * NS, name=f"n{i}.{k}")
                nested.callbacks.append(fire((i, k), 0))
            if spawn and cancellers:
                # Cancel a sibling mid-run: exercises in-flight and
                # lazy-deletion paths differently per queue.
                cancellers.pop().cancel()
        return cb

    for i, (delay, cancel, spawn) in enumerate(plan):
        ev = sim.timeout(delay * NS, name=f"t{i}")
        ev.callbacks.append(fire(i, spawn))
        if cancel:
            cancellers.append(ev)
    # Half the cancellations happen up front, half from callbacks.
    for ev in cancellers[: len(cancellers) // 2]:
        ev.cancel()
    del cancellers[: len(cancellers) // 2]

    if horizon_ns is not None:
        sim.run(until=horizon_ns * NS)
        sim.run()
    else:
        sim.run()
    return sim, trace


@given(
    plan=st.lists(_op, min_size=1, max_size=40),
    horizon_ns=st.none() | st.integers(0, 400),
)
@settings(max_examples=60, deadline=None)
def test_heap_and_calendar_dispatch_identically(plan, horizon_ns):
    sim_h, trace_h = _run("heap", plan, horizon_ns)
    sim_c, trace_c = _run("calendar", plan, horizon_ns)

    # Bit-identity: same events, same order, float-equal timestamps.
    assert trace_h == trace_c
    assert sim_h.now == sim_c.now

    # The two queues account identically at the engine level.
    assert sim_h.dispatched == sim_c.dispatched
    assert sim_h.skipped == sim_c.skipped
    assert sim_h.queued_events == sim_c.queued_events == 0

    # Books balance under pooling, for both implementations.
    for sim in (sim_h, sim_c):
        q = sim.queue
        assert q.live + q.dead == q.size == 0
        assert sim.dispatched + sim.skipped >= len(plan)


@given(plan=st.lists(_op, min_size=5, max_size=40), seed=st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_pooling_is_schedule_neutral(plan, seed):
    """A run with the pool warm must dispatch identically to a cold one."""

    def run(warm):
        sim = Simulator(seed=seed)
        if warm:
            # Prime the free pool: dispatch-and-recycle a few timers.
            for _ in range(8):
                sim.timeout(1 * NS)
            sim.run()
        base = sim.now
        trace = []
        for i, (delay, _cancel, _spawn) in enumerate(plan):
            ev = sim.timeout(delay * NS, name=f"t{i}")
            ev.callbacks.append(
                lambda e, i=i: trace.append((i, round((sim.now - base) / NS)))
            )
        sim.run()
        return sim, trace

    sim_cold, trace_cold = run(False)
    sim_warm, trace_warm = run(True)
    assert trace_cold == trace_warm
    assert sim_warm.pool_hits > 0
