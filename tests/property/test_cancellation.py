"""Property tests (hypothesis) for event cancellation.

Two invariants the whole runtime leans on:

* **absolute** -- a cancelled event's callback never runs, whatever the
  interleaving of schedule/cancel/fire;
* **schedule-neutral** -- a run that schedules timers and cancels some of
  them dispatches exactly the same live events, at the same times, in the
  same order, as an equivalent run in which the cancelled timers' side
  effects never existed.  This is what lets the reliability layer arm a
  timer per packet without perturbing any bit-identity pin.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

NS = 1e-9

#: One timer: (fire delay ns, wants cancel, cancel time ns).
_op = st.tuples(
    st.integers(1, 200),
    st.booleans(),
    st.integers(0, 199),
)


def _normalise(ops):
    """A cancel only takes effect if it lands strictly before the fire
    time; clamp the plan so "cancelled" means cancelled."""
    return [
        (fire, cancel and at < fire, min(at, fire - 1))
        for fire, cancel, at in ops
    ]


@given(ops=st.lists(_op, min_size=1, max_size=60), seed=st.integers(0, 2**16))
@settings(max_examples=80, deadline=None)
def test_cancelled_timers_never_run_and_are_schedule_neutral(ops, seed):
    plan = _normalise(ops)

    def run(schedule_cancelled: bool):
        sim = Simulator(seed=seed)
        trace = []
        for i, (fire, cancelled, at) in enumerate(plan):
            if cancelled:
                if schedule_cancelled:
                    handle = sim.call_after(fire * NS, trace.append, (i, "dead"))
                    sim.call_after(at * NS, handle.cancel)
                else:
                    # Equivalent run: the canceller still dispatches (as a
                    # no-op) but the doomed timer's side effect never exists.
                    sim.call_after(at * NS, lambda: None)
            else:
                sim.call_after(fire * NS, trace.append, (i, "live"))
        sim.run()
        return sim, trace

    sim_a, trace_a = run(True)
    sim_b, trace_b = run(False)

    # (a) cancelled events never run.
    assert all(tag == "live" for _i, tag in trace_a)
    # (b) bit-identical schedule of observable work.
    assert trace_a == trace_b
    assert sim_a.dispatched == sim_b.dispatched
    assert sim_a.now == sim_b.now
    # The books balance: every scheduled entry was dispatched or skipped.
    assert sim_a.queued_events == 0 and sim_a.dead_events == 0
    n_cancelled = sum(1 for _f, c, _a in plan if c)
    assert sim_a.skipped == n_cancelled


@given(fire=st.integers(1, 100), cancel_at=st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_cancel_fire_race_is_a_noop_not_an_error(fire, cancel_at):
    """Whoever loses the cancel/fire race gets a no-op, never an error.

    At equal timestamps the timer wins: it was scheduled first, so the
    heap's (time, seq) order dispatches it before the canceller."""
    sim = Simulator()
    ran = []
    out = {}
    handle = sim.call_after(fire * NS, ran.append, 1)
    sim.call_after(cancel_at * NS, lambda: out.setdefault("r", handle.cancel()))
    sim.run()
    if cancel_at < fire:
        assert ran == [] and out["r"] is True
    else:
        assert ran == [1] and out["r"] is False


@given(n=st.integers(1, 40), seed=st.integers(0, 999))
@settings(max_examples=40, deadline=None)
def test_random_cancel_storm_books_balance(n, seed):
    """Cancel a random subset mid-run; counters must reconcile exactly."""
    import numpy as np

    rng = np.random.default_rng(seed)
    sim = Simulator(seed=seed)
    fired = []
    handles = [
        sim.call_after(float(rng.integers(1, 500)) * NS, fired.append, i)
        for i in range(n)
    ]
    doomed = [h for h in handles if rng.random() < 0.5]
    for h in doomed:
        sim.call_after(0.0, h.cancel)  # t=0 beats every timer (delay >= 1ns)
    sim.run()
    assert len(fired) == n - len(doomed)
    assert sim.dispatched == (n - len(doomed)) + len(doomed)  # + cancellers
    assert sim.skipped == len(doomed)
    assert sim.queued_events == 0 and sim.dead_events == 0
