"""Differential property test: continuation mode vs polling mode.

The continuation-driven blocking calls (``completion="continuation"``)
replace the polling loop's spin with event-driven parking, so sim
*timestamps* legitimately differ between the modes -- but the order in
which requests complete, and the data they deliver, must be
bit-identical: both modes drain the same packet stream through the same
``_complete`` funnel.  The harness records the completion sequence via
sync continuations (pure bookkeeping, schedule-neutral by construction)
and compares the two modes over random message plans, on both event
schedulers.

Sizes stay in the inline/eager regime: rendezvous transfers interleave
CTS round-trips with the receiver's progress schedule, so their
*completion order* across unrelated tags is a property of the wait
loop's poll timing, not of the completion core under test here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster, ClusterConfig

#: Inline (<=512) and eager (<=16384) sizes: completion order is pinned
#: by arrival order, identical across completion modes.
SIZES = (64, 1024, 4096)


def _run(mode, sizes, seed, scheduler):
    cl = Cluster(ClusterConfig(
        n_nodes=2, ranks_per_node=1, threads_per_rank=1,
        lock="ticket", seed=seed, completion=mode, scheduler=scheduler,
    ))
    t0, t1 = cl.thread(0), cl.thread(1)
    order = []

    def sender():
        reqs = []
        for tag, nbytes in enumerate(sizes):
            r = yield from t0.isend(1, nbytes, tag=tag, data=(tag, nbytes))
            reqs.append(r)
        yield from t0.waitall(reqs)

    def receiver():
        reqs = []
        for tag, nbytes in enumerate(sizes):
            r = yield from t1.irecv(source=0, nbytes=nbytes, tag=tag)
            r.attach_continuation(
                lambda req, tag=tag: order.append(
                    (tag, req.data, cl.sim.now)
                ),
                sync=True,
            )
            reqs.append(r)
        delivered = yield from t1.waitall(reqs)
        order.append(("delivered", tuple(delivered), cl.sim.now))

    cl.run_workload([sender(), receiver()])
    return order


_plan = dict(
    sizes=st.lists(st.sampled_from(SIZES), min_size=1, max_size=12),
    seed=st.integers(0, 999),
    scheduler=st.sampled_from(("heap", "calendar")),
)


@given(**_plan)
@settings(max_examples=40, deadline=None)
def test_completion_order_matches_polling_mode(sizes, seed, scheduler):
    poll = _run("poll", sizes, seed, scheduler)
    cont = _run("continuation", sizes, seed, scheduler)
    # Timestamps differ by design (parking vs spinning); the completion
    # sequence and every delivered payload must not.
    assert [o[:2] for o in cont] == [o[:2] for o in poll]


@given(**_plan)
@settings(max_examples=20, deadline=None)
def test_continuation_mode_is_deterministic(sizes, seed, scheduler):
    # Same plan, same seed: bit-identical replay, timestamps included.
    a = _run("continuation", sizes, seed, scheduler)
    b = _run("continuation", sizes, seed, scheduler)
    assert a == b
