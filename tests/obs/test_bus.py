"""Unit tests for the Instrument bus and the EventLog recorder."""

import pytest

from repro.obs import (
    CATEGORIES,
    EventKind,
    EventLog,
    Instrument,
    ObsEvent,
    Recording,
)


def test_disabled_bus_emits_nothing():
    bus = Instrument()
    assert not bus.enabled
    assert not bus.wants("lock")
    bus.span_begin("lock", "x")  # no subscriber: must be a no-op
    assert bus.stats()["total"] == 0


def test_category_filtering():
    seen = []
    bus = Instrument()
    bus.subscribe(seen.append, categories=("lock",))
    assert bus.wants("lock") and not bus.wants("net")
    bus.instant("lock", "grant")
    bus.instant("net", "ignored")
    assert [e.name for e in seen] == ["grant"]


def test_unsubscribe_disables():
    seen = []
    bus = Instrument()
    bus.subscribe(seen.append)
    bus.instant("sim", "a")
    bus.unsubscribe(seen.append)
    bus.instant("sim", "b")
    assert [e.name for e in seen] == ["a"]
    assert not bus.enabled


def test_span_context_manager_pairs_begin_end():
    log = EventLog()
    bus = Instrument()
    bus.subscribe(log.append)
    with bus.span("mpi", "cs.main", rank=0, tid=3):
        bus.counter("mpi", "depth", 1, rank=0)
    kinds = [ev.kind for ev in log]
    assert kinds == [EventKind.SPAN_BEGIN, EventKind.COUNTER, EventKind.SPAN_END]
    spans = log.spans(strict=True)
    assert len(spans) == 1
    assert spans[0].name == "cs.main" and spans[0].tid == 3


def test_span_nesting_lifo_per_lane():
    """Nested spans on one lane pair LIFO; lanes don't interfere."""
    log = EventLog()
    bus = Instrument()
    bus.subscribe(log.append)
    bus.span_begin("lock", "hold", rank=0, tid=1)
    bus.span_begin("mpi", "cs.main", rank=0, tid=1)
    bus.span_begin("lock", "wait", rank=0, tid=2)  # other lane
    bus.span_end("mpi", "cs.main", rank=0, tid=1)
    bus.span_end("lock", "hold", rank=0, tid=1)
    bus.span_end("lock", "wait", rank=0, tid=2)
    spans = log.spans(strict=True)
    by_name = {s.name: s for s in spans}
    assert set(by_name) == {"hold", "cs.main", "wait"}
    inner, outer = by_name["cs.main"], by_name["hold"]
    assert outer.t0 <= inner.t0 and inner.t1 <= outer.t1


def test_unbalanced_span_strict_raises():
    log = EventLog()
    bus = Instrument()
    bus.subscribe(log.append)
    bus.span_begin("lock", "hold", rank=0, tid=1)
    with pytest.raises(ValueError):
        log.spans(strict=True)
    assert log.spans(strict=False) == []


def test_event_log_max_events_counts_drops():
    log = EventLog(max_events=2)
    for i in range(5):
        log.append(ObsEvent(kind=EventKind.INSTANT, category="sim",
                            name=f"e{i}", ts=float(i)))
    assert len(log) == 2
    assert log.dropped == 3


def test_bus_clock_follows_bound_sim():
    from repro.sim import Simulator

    sim = Simulator()
    bus = Instrument()
    bus.bind_sim(sim)
    assert sim.obs is bus
    seen = []
    bus.subscribe(seen.append)
    sim.call_after(2.5, lambda: bus.instant("meta", "tick"))
    sim.run()
    assert seen[-1].ts == 2.5


def test_counter_monotonicity_packets_handled():
    """mpi/packets_handled is a cumulative counter: never decreases."""
    from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster

    rec = Recording(categories=("mpi",))
    cl = throughput_cluster(lock="ticket", threads_per_rank=2, seed=3,
                            obs=rec.bus)
    run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=2))
    series = rec.log.counters()
    key = next(k for k in series if k[1] == "packets_handled")
    values = [v for _ts, v in series[key]]
    assert values, "no packets_handled samples recorded"
    assert all(b >= a for a, b in zip(values, values[1:]))
    ts = [t for t, _v in series[key]]
    assert all(b >= a for a, b in zip(ts, ts[1:]))


def test_emitted_stats_by_category():
    rec = Recording()
    from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster

    cl = throughput_cluster(lock="mutex", threads_per_rank=2, seed=3,
                            obs=rec.bus)
    run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=2))
    stats = rec.bus.stats()
    assert stats["total"] > 0
    for cat in ("lock", "mpi", "net"):
        assert stats["events_emitted"].get(cat, 0) > 0, cat
        assert cat in CATEGORIES
