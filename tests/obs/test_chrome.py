"""Chrome-trace JSON export: schema, lane balance, round-trip."""

import json

from repro.obs import Recording
from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster

VALID_PHASES = {"B", "E", "b", "e", "C", "i", "M"}


def _traced_run():
    rec = Recording()
    cl = throughput_cluster(lock="ticket", threads_per_rank=2, seed=3,
                            obs=rec.bus)
    run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=2))
    return rec


def test_chrome_trace_schema(tmp_path):
    rec = _traced_run()
    path = tmp_path / "trace.json"
    rec.write_chrome_trace(path)
    doc = json.loads(path.read_text())

    assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ns"
    events = doc["traceEvents"]
    assert events, "empty trace"
    for ev in events:
        assert ev["ph"] in VALID_PHASES, ev
        assert isinstance(ev["name"], str) and ev["name"]
        assert isinstance(ev["pid"], int)
        if ev["ph"] != "M":
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert ev["cat"] in ("sim", "lock", "mpi", "net")
        if ev["ph"] == "C":
            assert "value" in ev["args"]
        if ev["ph"] in ("b", "e"):
            assert "id" in ev


def test_begin_end_balanced_per_lane():
    doc = _traced_run().chrome_trace()
    depth = {}
    for ev in doc["traceEvents"]:
        if ev["ph"] == "B":
            depth[(ev["pid"], ev["tid"])] = depth.get((ev["pid"], ev["tid"]), 0) + 1
        elif ev["ph"] == "E":
            lane = (ev["pid"], ev["tid"])
            depth[lane] = depth.get(lane, 0) - 1
            assert depth[lane] >= 0, f"E before B on lane {lane}"
    assert all(v == 0 for v in depth.values()), depth


def test_async_packet_spans_match_by_id():
    doc = _traced_run().chrome_trace()
    begins = {e["id"] for e in doc["traceEvents"] if e["ph"] == "b"}
    ends = {e["id"] for e in doc["traceEvents"] if e["ph"] == "e"}
    assert begins and begins == ends


def test_timestamps_are_sim_microseconds():
    rec = _traced_run()
    doc = rec.chrome_trace()
    # The exporter scales simulated seconds by 1e6.
    max_ts_us = max(e["ts"] for e in doc["traceEvents"] if "ts" in e)
    max_ev_s = max(ev.ts for ev in rec.events)
    assert abs(max_ts_us - max_ev_s * 1e6) < 1e-6


def test_metadata_names_ranks_and_threads():
    doc = _traced_run().chrome_trace()
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["name"] for e in meta}
    assert {"process_name", "thread_name"} <= names
    labels = [e["args"]["name"] for e in meta if e["name"] == "process_name"]
    assert any("rank 0" in s for s in labels)


def test_dropped_events_reported_not_silent():
    rec = Recording(max_events=10)
    cl = throughput_cluster(lock="mutex", threads_per_rank=2, seed=3,
                            obs=rec.bus)
    run_throughput(cl, ThroughputConfig(msg_size=8, n_windows=1))
    assert rec.log.dropped > 0
    doc = rec.chrome_trace()
    assert doc["otherData"]["dropped_events"] == rec.log.dropped
    assert "dropped" in rec.summary()
