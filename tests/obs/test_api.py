"""API-surface tests: keyword-only config with validation, the uniform
runner signature, and run_experiment's strict kwargs."""

import inspect

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.mpi.world import ClusterConfig
from repro.obs import Recording


def test_cluster_config_is_keyword_only():
    with pytest.raises(TypeError):
        ClusterConfig(2)  # positional n_nodes no longer allowed


def test_cluster_config_rejects_unknown_lock():
    with pytest.raises(ValueError, match="valid locks.*ticket"):
        ClusterConfig(n_nodes=2, lock="tikcet")


def test_cluster_config_rejects_unknown_binding():
    with pytest.raises(ValueError, match="valid bindings"):
        ClusterConfig(n_nodes=2, binding="spread")


def test_cluster_config_rejects_unknown_granularity():
    with pytest.raises(ValueError, match="granularit"):
        ClusterConfig(n_nodes=2, cs_granularity="fine")


def test_all_runners_share_the_uniform_signature():
    expected = ["quick", "seed", "obs"]
    for name, runner in EXPERIMENTS.items():
        params = inspect.signature(runner).parameters
        assert list(params) == expected, name
        assert params["quick"].default is True, name
        assert params["seed"].default == 0, name
        assert params["obs"].default is None, name


def test_run_experiment_rejects_unknown_kwargs():
    with pytest.raises(TypeError) as ei:
        run_experiment("fig2b", sed=3)
    msg = str(ei.value)
    assert "'sed'" in msg
    assert "quick" in msg and "seed" in msg and "obs" in msg


def test_run_experiment_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_run_experiment_attaches_obs_stats():
    rec = Recording()
    res = run_experiment("fig2b", quick=True, seed=1, obs=rec.bus)
    assert res.ok
    stats = res.data["obs"]
    assert stats["total"] > 0
    assert stats["events_emitted"]["lock"] > 0


def test_result_to_dict_is_json_serializable():
    import json

    res = run_experiment("fig5a", quick=True, seed=1)
    doc = res.to_dict()
    text = json.dumps(doc)
    assert json.loads(text)["exp_id"] == "fig5a"
    assert doc["ok"] is True
