"""Tracing must not perturb the simulation.

The bus only *reads* the simulated clock -- it never schedules events,
yields, or consumes random numbers -- so a run with a bus attached must
be bit-identical (simulated clock and results) to the same run without
one.  These tests pin that invariant, plus the equivalence of the three
legacy profilers rebuilt as bus adapters.
"""

import numpy as np
import pytest

from repro.analysis.dangling import DanglingProfiler
from repro.experiments import run_experiment
from repro.locks.stats import LockTrace
from repro.network.trace import PacketTracer
from repro.obs import Instrument, Recording
from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster


def _run(tpn, obs=None, **overrides):
    """One fig2a-size cell: mutex throughput at `tpn` threads/rank."""
    cl = throughput_cluster(lock="mutex", threads_per_rank=tpn, seed=7,
                            obs=obs, **overrides)
    res = run_throughput(cl, ThroughputConfig(msg_size=64, n_windows=3))
    return cl, res


@pytest.mark.parametrize("tpn", [2, 4])
def test_bus_does_not_perturb_simulated_time(tpn):
    cl_plain, res_plain = _run(tpn)
    rec = Recording()  # full default trace: lock, mpi, net, meta
    cl_traced, res_traced = _run(tpn, obs=rec.bus)

    assert len(rec.events) > 0, "bus attached but nothing recorded"
    # Bit-identical, not approximately equal.
    assert cl_traced.sim.now == cl_plain.sim.now
    assert res_traced.elapsed_s == res_plain.elapsed_s
    assert res_traced.msg_rate_k == res_plain.msg_rate_k
    assert res_traced.total_messages == res_plain.total_messages
    assert res_traced.dangling == res_plain.dangling


def test_experiment_rows_identical_with_and_without_bus():
    plain = run_experiment("fig2b", quick=True, seed=5)
    rec = Recording()
    traced = run_experiment("fig2b", quick=True, seed=5, obs=rec.bus)
    assert traced.rows == plain.rows
    assert traced.checks == plain.checks
    assert traced.data["obs"]["total"] == len(rec.events) + rec.log.dropped


def test_locktrace_adapter_matches_direct_path():
    bus = Instrument()
    receiver_lock = "mutex@rank1"
    from_bus = LockTrace.from_bus(bus, lock_name=receiver_lock)
    cl, _ = _run(2, obs=bus, trace_locks=True)
    direct = cl.lock_traces[1]

    a, b = direct.as_arrays(), from_bus.as_arrays()
    assert set(a) == set(b)
    for col in a:
        np.testing.assert_array_equal(a[col], b[col], err_msg=col)
    assert len(direct) > 0


def test_packettracer_adapter_matches_direct_path():
    bus = Instrument()
    from_bus = PacketTracer.from_bus(bus)
    cl, _ = _run(2, obs=bus)
    # Rebuild the direct-path records by replaying is impossible after
    # the fact, so run the same config again with a fabric-attached
    # tracer; determinism (pinned above) makes the runs comparable.
    cl2 = throughput_cluster(lock="mutex", threads_per_rank=2, seed=7)
    direct = PacketTracer(cl2.fabric)
    run_throughput(cl2, ThroughputConfig(msg_size=64, n_windows=3))

    assert len(from_bus) == len(direct) > 0
    assert from_bus.records == direct.records
    assert from_bus.summary() == direct.summary()


def test_dangling_profiler_adapter_matches_direct_path():
    bus = Instrument()
    cl = throughput_cluster(lock="ticket", threads_per_rank=2, seed=7, obs=bus)
    direct = DanglingProfiler(cl.runtimes[1])
    from_bus = DanglingProfiler.from_bus(bus, cl.runtimes[1])
    run_throughput(cl, ThroughputConfig(msg_size=64, n_windows=3))

    assert direct.samples == from_bus.samples
    assert len(direct.samples) > 0
    assert direct.stats == from_bus.stats
