"""Regression tests for jsonable key coercion (experiments.base).

A tuple key ``(1, 2)`` and a string key ``"1,2"`` (or ``1`` vs ``"1"``)
coerce to the same JSON key; jsonable used to silently keep whichever
came last.  It now raises instead of corrupting the payload.
"""

import dataclasses

import pytest

from repro.experiments.base import jsonable


def test_tuple_keys_coerce_to_joined_strings():
    assert jsonable({(1, 2): "a", (1, 4): "b"}) == {"1,2": "a", "1,4": "b"}


def test_tuple_vs_string_collision_raises():
    with pytest.raises(ValueError, match="collision|coerce"):
        jsonable({(1, 2): "a", "1,2": "b"})


def test_int_vs_string_collision_raises():
    with pytest.raises(ValueError, match="collision|coerce"):
        jsonable({1: "a", "1": "b"})


def test_collision_error_names_both_keys():
    with pytest.raises(ValueError) as exc:
        jsonable({(1, 2): "a", "1,2": "b"})
    msg = str(exc.value)
    assert "(1, 2)" in msg and "'1,2'" in msg


def test_nested_collision_detected():
    with pytest.raises(ValueError):
        jsonable({"outer": {("x",): 1, "x": 2}})


def test_distinct_keys_unaffected():
    out = jsonable({("a", 1): {"n": 1}, "b": [1, 2], 3: None})
    assert out == {"a,1": {"n": 1}, "b": [1, 2], "3": None}


def test_dataclasses_and_sets_still_flatten():
    @dataclasses.dataclass
    class P:
        x: int
        ys: frozenset

    assert jsonable(P(x=1, ys=frozenset({2, 1}))) == {"x": 1, "ys": [1, 2]}
