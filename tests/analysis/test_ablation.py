"""Tests for the automated ablation harness (repro.analysis.ablation)."""

import json

import pytest

from repro.analysis import ablation
from repro.analysis.ablation import (
    COMPONENTS,
    build_matrix,
    cell_run_id,
    extract_metrics,
    importance_report,
    load_journal,
    rank_components,
    run_matrix,
)
from repro.experiments.registry import select_experiments


# ----------------------------------------------------------------------
# Run IDs
# ----------------------------------------------------------------------

class TestRunIds:
    def test_stable_across_invocations(self):
        a = build_matrix(["fig2b"], seed=3, quick=True)
        b = build_matrix(["fig2b"], seed=3, quick=True)
        assert [c.run_id for c in a] == [c.run_id for c in b]

    def test_independent_of_override_insertion_order(self):
        ov1 = {"lock": "priority", "cs": "per-vci:4"}
        ov2 = {"cs": "per-vci:4", "lock": "priority"}
        assert cell_run_id("fig2a", ov1, 0, True) == \
            cell_run_id("fig2a", ov2, 0, True)

    def test_sensitive_to_every_spec_field(self):
        base = cell_run_id("fig2a", {"lock": "mutex"}, 0, True)
        assert cell_run_id("fig2b", {"lock": "mutex"}, 0, True) != base
        assert cell_run_id("fig2a", {"lock": "ticket"}, 0, True) != base
        assert cell_run_id("fig2a", {"lock": "mutex"}, 1, True) != base
        assert cell_run_id("fig2a", {"lock": "mutex"}, 0, False) != base

    def test_unique_within_a_matrix(self):
        cells = build_matrix(select_experiments("fig2"), pairwise=True)
        ids = [c.run_id for c in cells]
        assert len(ids) == len(set(ids))


# ----------------------------------------------------------------------
# Matrix shape
# ----------------------------------------------------------------------

class TestMatrixShape:
    def test_baseline_plus_leave_one_out(self):
        cells = build_matrix(["fig2b"])
        assert cells[0].label == "baseline"
        assert cells[0].ablated == ()
        # fig2b is safe for every component: 1 + N cells.
        assert len(cells) == 1 + len(COMPONENTS)
        assert [c.label for c in cells[1:]] == \
            [f"no-{n}" for n in COMPONENTS]

    def test_baseline_cell_merges_all_baseline_values(self):
        cells = build_matrix(["fig2b"], components=["lock", "sharding"])
        assert cells[0].overrides == {"lock": "priority", "cs": "per-vci:4"}

    def test_loo_cell_swaps_exactly_its_component(self):
        cells = build_matrix(["fig2b"], components=["lock", "sharding"])
        by_label = {c.label: c for c in cells}
        assert by_label["no-lock"].overrides == \
            {"lock": "mutex", "cs": "per-vci:4"}
        assert by_label["no-sharding"].overrides == \
            {"lock": "priority", "cs": "global"}

    def test_unsafe_components_get_no_cell(self):
        cells = build_matrix(["fig_chaos"])
        labels = {c.label for c in cells}
        assert "no-reliability" not in labels
        assert "no-watchdog" not in labels
        assert "no-lock" in labels  # safe components still vary

    def test_pairwise_cells(self):
        cells = build_matrix(["fig2b"], components=["lock", "eager"],
                             pairwise=True)
        labels = [c.label for c in cells]
        assert labels == ["baseline", "no-lock", "no-eager", "no-lock+no-eager"]
        pair = cells[-1]
        assert pair.overrides["lock"] == "mutex"
        assert pair.overrides["eager_threshold"] == 0

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown component"):
            build_matrix(["fig2b"], components=["bogus"])

    def test_cells_are_json_roundtrippable(self):
        for cell in build_matrix(["fig2b"]):
            d = json.loads(json.dumps(cell.to_dict()))
            assert d["run_id"] == cell.run_id


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------

class TestExtractMetrics:
    def test_scoped_means_and_checks(self):
        doc = {
            "checks": {"a": True, "b": False},
            "data": {
                "rates": {"1,2": 10.0, "1,4": 30.0},
                "irrelevant": 99.0,
                "nested": {"cells": {"x": {"goodput_rps": 5.0,
                                           "p99_us": 7.0}}},
            },
        }
        m = extract_metrics(doc)
        assert m["rate"] == 20.0
        assert m["goodput_rps"] == 5.0
        assert m["p99_us"] == 7.0
        assert m["checks_ok"] == 0.5
        assert "irrelevant" not in m

    def test_bools_are_not_numbers(self):
        m = extract_metrics({"data": {"rates": {"a": True, "b": 4.0}}})
        assert m["rate"] == 4.0

    def test_real_experiment_payload(self, fig2b_records):
        base = fig2b_records[0]
        assert base["metrics"]["rate"] > 0
        assert base["metrics"]["checks_ok"] == 1.0


# ----------------------------------------------------------------------
# Execution, journal, resume
# ----------------------------------------------------------------------

#: Two quick cells: fig2b baseline + no-scheduler (bit-identical pair).
def _tiny_matrix():
    return build_matrix(["fig2b"], components=["scheduler"], seed=0,
                        quick=True)


@pytest.fixture(scope="module")
def fig2b_records(tmp_path_factory):
    """Serial run of the tiny matrix, shared across tests (journal on
    disk so the resume test can reuse it)."""
    path = tmp_path_factory.mktemp("ablation") / "journal.jsonl"
    records = run_matrix(_tiny_matrix(), jobs=1, journal_path=str(path))
    return records


class TestExecution:
    def test_records_in_matrix_order_with_spec_fields(self, fig2b_records):
        cells = _tiny_matrix()
        assert [r["run_id"] for r in fig2b_records] == \
            [c.run_id for c in cells]
        for rec, cell in zip(fig2b_records, cells):
            assert rec["status"] == "ok"
            assert rec["exp_id"] == "fig2b"
            assert rec["overrides"] == dict(cell.overrides)

    def test_scheduler_ablation_is_bit_identical(self, fig2b_records):
        base, no_sched = fig2b_records
        assert base["metrics"] == no_sched["metrics"]

    def test_failed_cell_recorded_not_raised(self):
        rec = ablation.execute_cell({
            "run_id": "deadbeef", "exp_id": "no-such-experiment",
            "label": "baseline", "ablated": [], "overrides": {},
            "seed": 0, "quick": True,
        })
        assert rec["status"] == "failed"
        assert "no-such-experiment" in rec["error"]

    def test_overrides_cleared_after_cell(self):
        from repro.overrides import active_overrides
        ablation.execute_cell({
            "run_id": "deadbeef", "exp_id": "no-such-experiment",
            "label": "no-lock", "ablated": ["lock"],
            "overrides": {"lock": "mutex"}, "seed": 0, "quick": True,
        })
        assert active_overrides() == {}

    def test_journal_resume_skips_completed_cells(self, tmp_path, monkeypatch):
        cells = _tiny_matrix()
        path = tmp_path / "journal.jsonl"
        # Pre-seed the journal: baseline done, no-scheduler not.
        done = {
            "run_id": cells[0].run_id, "exp_id": "fig2b",
            "label": "baseline", "ablated": [], "overrides": {},
            "seed": 0, "quick": True, "status": "ok", "ok": True,
            "checks": {}, "metrics": {"rate": 123.0},
        }
        path.write_text(json.dumps(done) + "\n")

        executed = []
        real = ablation.execute_cell

        def spy(cell_dict):
            executed.append(cell_dict["run_id"])
            return real(cell_dict)

        monkeypatch.setattr(ablation, "execute_cell", spy)
        records = run_matrix(cells, jobs=1, journal_path=str(path))
        assert executed == [cells[1].run_id]
        # The cached record is returned verbatim for the skipped cell.
        assert records[0] == done
        assert records[1]["status"] == "ok"
        # Journal now holds both cells; a second run executes nothing.
        executed.clear()
        again = run_matrix(cells, jobs=1, journal_path=str(path))
        assert executed == []
        assert [r["run_id"] for r in again] == [c.run_id for c in cells]

    def test_failed_records_are_retried_on_resume(self, tmp_path, monkeypatch):
        cells = _tiny_matrix()[:1]
        path = tmp_path / "journal.jsonl"
        failed = dict(cells[0].to_dict(), status="failed", error="boom")
        path.write_text(json.dumps(failed) + "\n")
        monkeypatch.setattr(
            ablation, "execute_cell",
            lambda d: dict(d, status="ok", ok=True, checks={}, metrics={}),
        )
        records = run_matrix(cells, jobs=1, journal_path=str(path))
        assert records[0]["status"] == "ok"

    def test_torn_journal_line_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"run_id": "aa", "status": "ok"}\n{"run_id": "tru')
        assert list(load_journal(str(path))) == ["aa"]

    def test_pool_matches_serial(self, fig2b_records, tmp_path):
        path = tmp_path / "pool.jsonl"
        pooled = run_matrix(_tiny_matrix(), jobs=2, journal_path=str(path))
        key = lambda r: r["run_id"]  # noqa: E731
        assert sorted(pooled, key=key) == sorted(fig2b_records, key=key)
        # The on-disk journal carries the same records (append order may
        # differ between pool and serial; no timing fields exist).
        on_disk = load_journal(str(path))
        assert sorted(on_disk.values(), key=key) == \
            sorted(fig2b_records, key=key)


# ----------------------------------------------------------------------
# Importance report
# ----------------------------------------------------------------------

def _fake_records():
    mk = lambda label, ablated, **metrics: {  # noqa: E731
        "run_id": label, "exp_id": "figX", "label": label,
        "ablated": ablated, "overrides": {}, "seed": 0, "quick": True,
        "status": "ok", "ok": True, "checks": {}, "metrics": metrics,
    }
    return [
        mk("baseline", [], rate=100.0, dangling=10.0),
        mk("no-lock", ["lock"], rate=50.0, dangling=40.0),
        mk("no-eager", ["eager"], rate=90.0, dangling=10.0),
        dict(mk("no-watchdog", ["watchdog"]), status="failed",
             error="boom", metrics=None),
    ]


class TestReport:
    def test_ranking_orders_by_mean_relative_impact(self):
        ranked = rank_components(_fake_records())
        assert [name for name, _, _ in ranked] == ["lock", "eager"]
        lock_score = ranked[0][1]
        assert lock_score == pytest.approx((50.0 + 300.0) / 2)

    def test_report_contains_deltas_and_failures(self):
        text = importance_report(_fake_records())
        assert "Component importance" in text
        assert "-50.0%" in text       # rate: 100 -> 50
        assert "+300.0%" in text      # dangling: 10 -> 40
        assert "Failed cells" in text and "boom" in text

    def test_report_with_no_records(self):
        assert "no completed cells" in importance_report([])
