"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import ascii_chart


def test_basic_render_contains_markers_and_legend():
    out = ascii_chart({
        "a": [(1, 10), (10, 100), (100, 1000)],
        "b": [(1, 20), (10, 50), (100, 500)],
    }, title="T")
    assert out.splitlines()[0] == "T"
    assert "o a" in out and "x b" in out
    assert out.count("o") >= 3  # three points plus legend


def test_extremes_land_on_edges():
    out = ascii_chart({"s": [(1, 1), (1000, 1000)]}, width=20, height=8)
    lines = out.splitlines()
    # Max point on the top row, min point on the bottom row.
    assert "o" in lines[0]
    grid_rows = [l for l in lines if "|" in l]
    assert "o" in grid_rows[-1]


def test_axis_labels_present():
    out = ascii_chart({"s": [(1, 2), (4, 8)]},
                      xlabel="size", ylabel="rate")
    assert "x: size" in out and "y: rate" in out


def test_linear_scale_allows_zero():
    out = ascii_chart({"s": [(0, 0), (5, 10)]}, logx=False, logy=False)
    assert "|" in out


def test_log_scale_rejects_nonpositive():
    with pytest.raises(ValueError, match="positive"):
        ascii_chart({"s": [(0, 1)]})
    with pytest.raises(ValueError, match="positive"):
        ascii_chart({"s": [(1, -5)]})


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": []})


def test_too_small_rejected():
    with pytest.raises(ValueError, match="too small"):
        ascii_chart({"s": [(1, 1)]}, width=4, height=2)


def test_constant_series_does_not_crash():
    out = ascii_chart({"s": [(1, 5), (10, 5), (100, 5)]})
    assert "o" in out


def test_many_series_cycle_markers():
    series = {f"s{i}": [(1, i + 1), (10, 10 * (i + 1))] for i in range(10)}
    out = ascii_chart(series)
    # 10 series with an 8-marker alphabet: markers repeat but all appear.
    assert "s0" in out and "s9" in out
