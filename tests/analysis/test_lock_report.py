"""Tests for the lock-usage analysis and the packet tracer."""

import pytest

from repro.analysis import (
    analyze_lock_usage,
    transition_histogram,
    wasted_acquisition_fraction,
)
from repro.locks import LockTrace
from repro.mpi import Cluster, ClusterConfig
from repro.network import PacketKind, PacketTracer
from repro.workloads import ThroughputConfig, run_throughput


def synthetic_trace(tids, sockets, times, holds):
    tr = LockTrace()
    tr.tids = list(tids)
    tr.sockets = list(sockets)
    tr.times = list(times)
    tr.hold_times = list(holds)
    tr.n_contenders = [1] * len(tids)
    tr.n_contenders_prev_socket = [0] * len(tids)
    return tr


class TestLockUsage:
    def test_transition_histogram(self):
        # t0(s0), t0(s0), t1(s0), t2(s1): same-thread, same-socket, cross.
        tr = synthetic_trace([0, 0, 1, 2], [0, 0, 0, 1],
                             [0, 1, 2, 3], [0.5] * 4)
        h = transition_histogram(tr)
        assert h == {"same-thread": 1, "same-socket": 1, "cross-socket": 1}

    def test_transition_histogram_short(self):
        tr = synthetic_trace([0], [0], [0.0], [0.1])
        assert sum(transition_histogram(tr).values()) == 0

    def test_utilization_full(self):
        # Back-to-back holds: utilization ~ 1.
        tr = synthetic_trace([0, 1], [0, 0], [0.0, 1.0], [1.0, 1.0])
        usage = analyze_lock_usage(tr)
        assert usage.utilization == pytest.approx(1.0)
        assert usage.mean_gap_s == pytest.approx(0.0)
        assert usage.mean_hold_s == pytest.approx(1.0)

    def test_utilization_half(self):
        tr = synthetic_trace([0, 1], [0, 0], [0.0, 2.0], [1.0, 1.0])
        usage = analyze_lock_usage(tr)
        assert usage.utilization == pytest.approx(2.0 / 3.0)
        assert usage.mean_gap_s == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_lock_usage(LockTrace())

    def test_on_real_run(self):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=4,
                                   lock="mutex", seed=3, trace_locks=True))
        run_throughput(cl, ThroughputConfig(msg_size=64, n_windows=2))
        usage = analyze_lock_usage(cl.lock_traces[1])
        assert 0.0 < usage.utilization <= 1.0
        assert usage.n_acquisitions > 100
        assert sum(usage.transitions.values()) == usage.n_acquisitions - 1


class TestWastedAcquisitions:
    def test_zero_when_no_entries(self):
        from repro.mpi.runtime import RuntimeStats

        assert wasted_acquisition_fraction(RuntimeStats()) == 0.0

    def test_fraction_from_counters(self):
        from repro.mpi.runtime import RuntimeStats

        s = RuntimeStats()
        s.cs_entries_main = 6
        s.cs_entries_progress = 4
        s.empty_polls = 5
        assert wasted_acquisition_fraction(s) == pytest.approx(0.5)


class TestPacketTracer:
    def run_traced(self, msg_size):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1,
                                   lock="ticket", seed=3))
        tracer = PacketTracer(cl.fabric)
        run_throughput(cl, ThroughputConfig(msg_size=msg_size, n_windows=1))
        return tracer

    def test_counts_eager_traffic(self):
        tracer = self.run_traced(64)
        s = tracer.summary()
        assert s.n_packets == 64
        assert s.by_kind == {"eager": 64}
        assert s.by_pair == {(0, 1): 64}
        assert s.packet_rate > 0

    def test_rendezvous_traffic_has_control_packets(self):
        tracer = self.run_traced(1 << 17)
        s = tracer.summary()
        assert s.by_kind["rts"] == 64
        assert s.by_kind["cts"] == 64
        assert s.by_kind["rndv_data"] == 64
        # Control packets carry no payload bytes.
        assert s.bytes_by_kind["rts"] == 0
        assert s.bytes_by_kind["rndv_data"] == 64 * (1 << 17)

    def test_times_filter(self):
        tracer = self.run_traced(1 << 17)
        all_times = tracer.times()
        cts_times = tracer.times(PacketKind.CTS)
        assert len(cts_times) == 64
        assert len(all_times) == len(tracer)

    def test_detach(self):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1,
                                   lock="ticket", seed=3))
        tracer = PacketTracer(cl.fabric)
        tracer.detach()
        run_throughput(cl, ThroughputConfig(msg_size=64, n_windows=1))
        assert len(tracer) == 0
        assert tracer.summary().n_packets == 0
