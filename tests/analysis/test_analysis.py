"""Tests for the analysis/instrumentation modules."""

import numpy as np
import pytest

from repro.analysis import (
    DanglingProfiler,
    TimeBreakdown,
    compute_bias_factors,
    format_rate,
    format_size,
    format_table,
    message_rate_k,
    speedup,
)
from repro.locks import LockTrace


def synthetic_trace(tids, sockets, contenders, prev_socket_counts, holds=None):
    tr = LockTrace()
    tr.times = list(np.arange(len(tids), dtype=float))
    tr.tids = list(tids)
    tr.sockets = list(sockets)
    tr.n_contenders = list(contenders)
    tr.n_contenders_prev_socket = list(prev_socket_counts)
    tr.hold_times = holds if holds is not None else [0.1] * len(tids)
    return tr


class TestBiasFactors:
    def test_perfect_monopoly_bias(self):
        """Same thread always reacquires with 2 contenders: observed Pc=1,
        fair Pc=0.5 -> core bias 2."""
        n = 100
        tr = synthetic_trace([7] * n, [0] * n, [2] * n, [2] * n)
        b = compute_bias_factors(tr)
        assert b.pc_observed == 1.0
        assert b.pc_fair == pytest.approx(0.5)
        assert b.core_bias == pytest.approx(2.0)
        assert b.socket_bias == pytest.approx(1.0)

    def test_round_robin_is_antibiased(self):
        tids = [0, 1] * 50
        tr = synthetic_trace(tids, [0] * 100, [2] * 100, [2] * 100)
        b = compute_bias_factors(tr)
        assert b.pc_observed == 0.0
        assert b.core_bias == 0.0

    def test_socket_bias_detected(self):
        # Alternate threads 0/1, both socket 0, while half the waiters
        # sit on socket 1: observed Ps=1, fair Ps=0.5 -> bias 2.
        tids = [0, 1] * 50
        tr = synthetic_trace(tids, [0] * 100, [4] * 100, [2] * 100)
        b = compute_bias_factors(tr)
        assert b.socket_bias == pytest.approx(2.0)

    def test_min_contenders_filter(self):
        tr = synthetic_trace([0] * 10, [0] * 10, [1] * 10, [1] * 10)
        with pytest.raises(ValueError, match="no acquisitions"):
            compute_bias_factors(tr, min_contenders=2)
        b = compute_bias_factors(tr, min_contenders=1)
        assert b.core_bias == pytest.approx(1.0)

    def test_short_trace_rejected(self):
        tr = synthetic_trace([0], [0], [1], [1])
        with pytest.raises(ValueError, match="too short"):
            compute_bias_factors(tr)


class TestDanglingProfiler:
    def test_samples_on_lock_grant(self):
        from repro.mpi import Cluster, ClusterConfig

        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="ticket"))
        prof = DanglingProfiler(cl.runtimes[1])
        t0, t1 = cl.thread(0), cl.thread(1)

        def sender():
            yield from t0.send(1, 64, tag=0, data="x")

        def receiver():
            yield from t1.recv(source=0, tag=0)

        cl.run_workload([sender(), receiver()])
        assert prof.stats.n_samples > 0
        assert prof.stats.mean >= 0
        assert prof.series().dtype == np.int64

    def test_detach_stops_sampling(self):
        from repro.mpi import Cluster, ClusterConfig

        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="ticket"))
        prof = DanglingProfiler(cl.runtimes[1])
        prof.detach()
        t0, t1 = cl.thread(0), cl.thread(1)

        def sender():
            yield from t0.send(1, 64, tag=0)

        def receiver():
            yield from t1.recv(source=0, tag=0)

        cl.run_workload([sender(), receiver()])
        assert prof.stats.n_samples == 0

    def test_empty_stats(self):
        from repro.mpi import Cluster, ClusterConfig

        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="ticket"))
        prof = DanglingProfiler(cl.runtimes[0])
        assert prof.stats.mean == 0.0
        assert prof.stats.maximum == 0


class TestMetrics:
    def test_message_rate_k(self):
        assert message_rate_k(1000, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            message_rate_k(10, 0.0)

    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_breakdown_percentages(self):
        b = TimeBreakdown()
        b.add("a", 3.0)
        b.add("b", 1.0)
        b.add("a", 1.0)
        pct = b.percentages()
        assert pct["a"] == pytest.approx(80.0)
        assert pct["b"] == pytest.approx(20.0)
        assert b.total == pytest.approx(5.0)

    def test_breakdown_empty_and_negative(self):
        b = TimeBreakdown()
        assert b.percentages() == {}
        with pytest.raises(ValueError):
            b.add("x", -1.0)

    def test_breakdown_merge(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.segments == {"x": 3.0, "y": 3.0}


class TestReport:
    def test_format_size(self):
        assert format_size(1) == "1"
        assert format_size(1023) == "1023"
        assert format_size(1024) == "1K"
        assert format_size(4096) == "4K"
        assert format_size(1 << 20) == "1M"

    def test_format_rate(self):
        assert format_rate(1234.5) == "1234"
        assert format_rate(56.78) == "56.8"
        assert format_rate(1.234) == "1.23"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[2:]}) == 1  # aligned rows

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a"], [[1, 2]])
