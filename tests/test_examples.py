"""Smoke tests: every example script runs end-to-end with small args."""

import pathlib
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv):
    sys.path.insert(0, str(EXAMPLES))
    try:
        import importlib

        mod = importlib.import_module(name)
        importlib.reload(mod)
        monkeypatch.setattr(sys, "argv", [name] + argv)
        mod.main()
    finally:
        sys.path.remove(str(EXAMPLES))
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart",
                      ["--threads", "2", "--windows", "2"])
    assert "mutex" in out and "ticket" in out
    assert "single-threaded" in out


def test_lock_arbitration_demo(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "lock_arbitration_demo",
                      ["--threads", "4", "--duration-us", "50"])
    assert "bias factor" in out
    assert "monopoly run" in out


def test_graph500_bfs(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "graph500_bfs",
                      ["--scale", "9", "--ranks", "2", "--threads", "2",
                       "--locks", "ticket"])
    assert "MTEPS" in out


def test_heat_stencil(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "heat_stencil",
                      ["--extent", "8", "--iterations", "2", "--ranks", "2",
                       "--threads", "2", "--locks", "ticket"])
    assert "GFlops" in out


def test_genome_assembly(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "genome_assembly",
                      ["--reads", "200", "--genome", "2000", "--nodes", "1",
                       "--ranks-per-node", "2", "--locks", "ticket"])
    assert "distinct k-mers" in out


def test_rma_async_progress(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "rma_async_progress",
                      ["--ranks", "3", "--ops", "6"])
    assert "fairness gain" in out
