"""Tests for the N2N all-to-all streaming benchmark."""

import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.workloads import N2NConfig, run_n2n


def run(lock="ticket", ranks=3, threads=2, style="windowed", **kw):
    cl = Cluster(ClusterConfig(
        n_nodes=ranks, threads_per_rank=threads, lock=lock, seed=3))
    cfg = N2NConfig(msg_size=kw.pop("size", 256), window=kw.pop("window", 4),
                    n_windows=kw.pop("n_windows", 2), style=style)
    return cl, run_n2n(cl, cfg)


def test_message_accounting():
    ranks, threads, window, n_windows = 3, 2, 4, 2
    cl, res = run(ranks=ranks, threads=threads, window=window, n_windows=n_windows)
    expected = ranks * threads * (ranks - 1) * window * n_windows
    assert res.total_messages == expected
    sends = sum(rt.stats.sends_issued for rt in cl.runtimes)
    assert sends == expected


def test_rounds_style_equivalent_totals():
    _, a = run(style="windowed")
    _, b = run(style="rounds")
    assert a.total_messages == b.total_messages


def test_unknown_style_rejected():
    cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="ticket", seed=0))
    with pytest.raises(ValueError, match="style"):
        run_n2n(cl, N2NConfig(style="bogus"))


def test_single_rank_rejected():
    cl = Cluster(ClusterConfig(n_nodes=1, threads_per_rank=2, lock="ticket", seed=0))
    with pytest.raises(ValueError, match="2 ranks"):
        run_n2n(cl, N2NConfig())


def test_all_requests_drain():
    cl, res = run(ranks=4, threads=2)
    for rt in cl.runtimes:
        assert rt.dangling_count == 0
        assert len(rt.posted_q) == 0
        assert len(rt.unexp_q) == 0


def test_mutex_slower_than_ticket():
    _, m = run(lock="mutex", ranks=4, threads=4, style="rounds", size=1024)
    _, t = run(lock="ticket", ranks=4, threads=4, style="rounds", size=1024)
    assert t.msg_rate_k > m.msg_rate_k


def test_unexpected_fraction_in_range():
    _, res = run(ranks=4, threads=4, style="rounds")
    assert 0.0 <= res.unexpected_fraction <= 1.0
