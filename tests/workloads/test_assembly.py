"""Tests for the mini-SWAP assembler: reads, k-mer graph, distribution."""

import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.workloads.assembly import (
    AssemblyConfig,
    KmerTable,
    generate_reads,
    kmer_owner,
    kmerize,
    run_assembly,
)


class TestReads:
    def test_read_count_and_length(self):
        rs = generate_reads(genome_length=1000, n_reads=50, read_length=36, seed=1)
        assert rs.n_reads == 50
        assert all(len(r) == 36 for r in rs.reads)

    def test_reads_come_from_genome_without_errors(self):
        rs = generate_reads(genome_length=500, n_reads=20, seed=2)
        assert all(r in rs.genome for r in rs.reads)

    def test_errors_perturb_reads(self):
        clean = generate_reads(genome_length=500, n_reads=50, seed=3)
        noisy = generate_reads(genome_length=500, n_reads=50,
                               error_rate=0.2, seed=3)
        assert any(r not in noisy.genome for r in noisy.reads)
        assert clean.genome == noisy.genome

    def test_too_long_reads_rejected(self):
        with pytest.raises(ValueError):
            generate_reads(genome_length=10, read_length=36)

    def test_deterministic(self):
        a = generate_reads(seed=4)
        b = generate_reads(seed=4)
        assert a.reads == b.reads


class TestKmerGraph:
    def test_kmerize_positions(self):
        out = kmerize("ACGTAC", 4)
        assert [k for k, _, _ in out] == ["ACGT", "CGTA", "GTAC"]
        assert out[0][1] == "" and out[0][2] == "A"
        assert out[1][1] == "A" and out[1][2] == "C"
        assert out[2][1] == "C" and out[2][2] == ""

    def test_kmerize_bad_k(self):
        with pytest.raises(ValueError):
            kmerize("ACGT", 1)
        with pytest.raises(ValueError):
            kmerize("ACGT", 5)

    def test_owner_stable_and_in_range(self):
        for km in ("ACGTACGTACGTACGTACGTA", "TTTTTTTTTTTTTTTTTTTTT"):
            o = kmer_owner(km, 8)
            assert 0 <= o < 8
            assert o == kmer_owner(km, 8)

    def test_insert_merges_counts_and_edges(self):
        t = KmerTable(0, 1, 4)
        t.insert("ACGT", "", "A")
        t.insert("ACGT", "G", "A")
        assert t.n_kmers == 1
        node = t.nodes["ACGT"]
        assert node.count == 2
        assert node.preds == {"G"}
        assert node.succs == {"A"}

    def test_branching_detection(self):
        t = KmerTable(0, 1, 4)
        t.insert("ACGT", "", "A")
        assert t.n_branching() == 0
        t.insert("ACGT", "", "C")
        assert t.n_branching() == 1


class TestAssembly:
    CFG = AssemblyConfig(genome_length=3000, n_reads=600, k=21, batch_size=32)

    def kmer_total(self):
        return self.CFG.n_reads * (self.CFG.read_length - self.CFG.k + 1)

    @pytest.mark.parametrize("nodes,rpn", [(1, 1), (1, 4), (2, 2), (2, 4)])
    def test_no_kmers_lost(self, nodes, rpn):
        cl = Cluster(ClusterConfig(
            n_nodes=nodes, ranks_per_node=rpn, threads_per_rank=2,
            lock="ticket", seed=0))
        res = run_assembly(cl, self.CFG)
        assert res.total_kmers_inserted == self.kmer_total()

    def test_distinct_kmers_independent_of_partitioning(self):
        counts = set()
        for nodes in (1, 2):
            cl = Cluster(ClusterConfig(
                n_nodes=nodes, ranks_per_node=2, threads_per_rank=2,
                lock="ticket", seed=0))
            counts.add(run_assembly(cl, self.CFG).distinct_kmers)
        assert len(counts) == 1

    def test_error_free_reads_give_few_branches(self):
        cl = Cluster(ClusterConfig(
            n_nodes=2, ranks_per_node=2, threads_per_rank=2,
            lock="ticket", seed=0))
        res = run_assembly(cl, self.CFG)
        # A clean random genome has almost no repeated (k-1)-mers.
        assert res.branching_kmers < 0.02 * res.distinct_kmers

    def test_needs_two_threads(self):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="ticket"))
        with pytest.raises(ValueError, match="2 threads"):
            run_assembly(cl, self.CFG)

    def test_fair_lock_speeds_up(self):
        cfg = AssemblyConfig(genome_length=3000, n_reads=600, k=21, batch_size=8)
        times = {}
        for lock in ("mutex", "ticket"):
            cl = Cluster(ClusterConfig(
                n_nodes=2, ranks_per_node=4, threads_per_rank=2,
                lock=lock, seed=0))
            times[lock] = run_assembly(cl, cfg).elapsed_s
        assert times["ticket"] < times["mutex"]

    def test_deterministic(self):
        vals = set()
        for _ in range(2):
            cl = Cluster(ClusterConfig(
                n_nodes=2, ranks_per_node=2, threads_per_rank=2,
                lock="mutex", seed=1))
            vals.add(run_assembly(cl, self.CFG).elapsed_s)
        assert len(vals) == 1
