"""Tests for the 3D stencil: decomposition, kernel, hybrid runner."""

import numpy as np
import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.workloads.stencil import (
    StencilConfig,
    decompose,
    factor_ranks,
    run_stencil,
    step_interior,
)


class TestDecomposition:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6, 8, 12, 16, 64])
    def test_factor_product(self, p):
        pz, py, px = factor_ranks(p)
        assert pz * py * px == p

    def test_prefers_z_axis(self):
        assert factor_ranks(2) == (2, 1, 1)
        assert factor_ranks(4) == (2, 2, 1)
        assert factor_ranks(8) == (2, 2, 2)

    def test_boxes_tile_domain_exactly(self):
        n = (12, 10, 8)
        boxes = decompose(n, 6)
        cells = sum(b.n_cells for b in boxes)
        assert cells == 12 * 10 * 8
        seen = set()
        for b in boxes:
            for z in range(b.lo[0], b.hi[0]):
                for y in range(b.lo[1], b.hi[1]):
                    for x in range(b.lo[2], b.hi[2]):
                        assert (z, y, x) not in seen
                        seen.add((z, y, x))
        assert len(seen) == cells

    def test_neighbor_symmetry(self):
        boxes = decompose((8, 8, 8), 8)
        for b in boxes:
            for axis in range(3):
                for d in (-1, 1):
                    nb = b.neighbor_rank(axis, d)
                    if nb is not None:
                        back = boxes[nb].neighbor_rank(axis, -d)
                        assert back == b.rank

    def test_boundary_has_no_neighbor(self):
        boxes = decompose((8, 8, 8), 2)  # grid (2,1,1)
        assert boxes[0].neighbor_rank(0, -1) is None
        assert boxes[0].neighbor_rank(0, +1) == 1
        assert boxes[1].neighbor_rank(0, +1) is None

    def test_overdecomposition_rejected(self):
        with pytest.raises(ValueError):
            decompose((2, 2, 2), 16)

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            factor_ranks(0)


class TestKernel:
    def test_uniform_field_is_stationary(self):
        u = np.full((6, 6, 6), 3.0)
        v = np.zeros_like(u)
        # With uniform interior AND ghosts, the Laplacian vanishes.
        step_interior(u, v)
        assert np.allclose(v[1:-1, 1:-1, 1:-1], 3.0)

    def test_heat_diffuses_from_spike(self):
        u = np.zeros((7, 7, 7))
        u[3, 3, 3] = 1.0
        v = np.zeros_like(u)
        step_interior(u, v, alpha=0.1)
        assert v[3, 3, 3] < 1.0
        assert v[2, 3, 3] > 0.0

    def test_conservation_interior(self):
        """Away from boundaries the update conserves total heat."""
        rng = np.random.default_rng(0)
        u = np.zeros((10, 10, 10))
        u[3:7, 3:7, 3:7] = rng.random((4, 4, 4))
        v = np.zeros_like(u)
        step_interior(u, v, alpha=0.1)
        assert v[1:-1, 1:-1, 1:-1].sum() == pytest.approx(
            u[1:-1, 1:-1, 1:-1].sum()
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            step_interior(np.zeros((4, 4, 4)), np.zeros((5, 4, 4)))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            step_interior(np.zeros((2, 4, 4)), np.zeros((2, 4, 4)))


class TestRunner:
    def _serial_reference(self, cfg, n_ranks):
        from repro.workloads.stencil.decomposition import decompose as dec

        rng = np.random.default_rng(cfg.seed)
        boxes = dec(cfg.n, n_ranks)
        nz, ny, nx = cfg.n
        U = np.zeros((nz + 2, ny + 2, nx + 2))
        V = np.zeros_like(U)
        for b in boxes:
            sz, sy, sx = b.shape
            U[1 + b.lo[0]:1 + b.hi[0], 1 + b.lo[1]:1 + b.hi[1],
              1 + b.lo[2]:1 + b.hi[2]] = rng.random((sz, sy, sx))
        for _ in range(cfg.iterations):
            step_interior(U, V, alpha=cfg.alpha)
            U, V = V, U
        return boxes, U

    @pytest.mark.parametrize("ranks,threads", [(1, 2), (2, 2), (4, 2), (8, 1)])
    def test_matches_serial_solution(self, ranks, threads):
        cfg = StencilConfig(n=(8, 8, 8), iterations=3, seed=5)
        cl = Cluster(ClusterConfig(
            n_nodes=ranks, threads_per_rank=threads, lock="ticket", seed=1))
        res = run_stencil(cl, cfg)
        boxes, U = self._serial_reference(cfg, ranks)
        for b, f in zip(boxes, res.fields):
            ref = U[1 + b.lo[0]:1 + b.hi[0], 1 + b.lo[1]:1 + b.hi[1],
                    1 + b.lo[2]:1 + b.hi[2]]
            assert np.allclose(ref, f)

    def test_result_independent_of_lock(self):
        cfg = StencilConfig(n=(8, 8, 8), iterations=3, seed=5)
        sums = set()
        for lock in ("mutex", "ticket", "priority"):
            cl = Cluster(ClusterConfig(
                n_nodes=4, threads_per_rank=2, lock=lock, seed=1))
            res = run_stencil(cl, cfg)
            sums.add(round(float(sum(f.sum() for f in res.fields)), 12))
        assert len(sums) == 1

    def test_breakdown_covers_all_time(self):
        cfg = StencilConfig(n=(8, 8, 8), iterations=2)
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=2, lock="ticket"))
        res = run_stencil(cl, cfg)
        pct = res.breakdown.percentages()
        assert set(pct) == {"mpi", "compute", "sync"}
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_gflops_positive(self):
        cfg = StencilConfig(n=(8, 8, 8), iterations=2)
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=2, lock="ticket"))
        assert run_stencil(cl, cfg).gflops > 0

    def test_indivisible_slab_rejected(self):
        # local nz = 4 not divisible by 3 threads
        cfg = StencilConfig(n=(8, 8, 8), iterations=1)
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=3, lock="ticket"))
        from repro.sim import SimulationError

        with pytest.raises((ValueError, SimulationError)):
            run_stencil(cl, cfg)
