"""Tests for the multithreaded latency benchmark."""


from repro.mpi import Cluster, ClusterConfig
from repro.workloads import LatencyConfig, run_latency


def run(lock="ticket", threads=2, size=64, iters=10, seed=3):
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=threads, lock=lock, seed=seed))
    return run_latency(cl, LatencyConfig(msg_size=size, n_iters=iters))


def test_latency_positive_and_reasonable():
    res = run()
    assert res.latency_us > 0
    # Must be at least the one-way network latency.
    assert res.latency_us * 1e-6 >= 1300e-9


def test_single_thread_latency_is_rtt():
    """T=1 aggregate latency reduces to the classic per-message RTT."""
    res = run(threads=1, size=1, iters=20)
    # One RTT >= 2 network latencies.
    assert res.latency_us * 1e-6 >= 2 * 1300e-9


def test_latency_grows_with_message_size():
    small = run(size=64)
    big = run(size=1 << 20)
    assert big.latency_us > small.latency_us


def test_mutex_worse_than_ticket_small():
    m = run(lock="mutex", threads=8, size=1, iters=20)
    t = run(lock="ticket", threads=8, size=1, iters=20)
    assert m.latency_us > t.latency_us


def test_multithreaded_beats_single_for_large_messages():
    """Fig 8b: pipelined concurrent transfers beat the serial ping-pong
    above the eager/rendezvous range."""
    single = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=1, lock="null", seed=3))
    s = run_latency(single, LatencyConfig(msg_size=1 << 16, n_iters=20))
    mt = run(lock="ticket", threads=8, size=1 << 16, iters=20)
    assert mt.latency_us < s.latency_us


def test_deterministic():
    assert run(seed=5).latency_us == run(seed=5).latency_us
    assert run(seed=5).latency_us != run(seed=6).latency_us
