"""Tests for the Graph500 BFS kernel: generator and distributed traversal."""

import networkx as nx
import numpy as np
import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.workloads.bfs import BfsConfig, generate_graph, run_bfs
from repro.workloads.bfs.graph_gen import kronecker_edges


class TestGraphGen:
    def test_vertex_count(self):
        g = generate_graph(8, 4, seed=1)
        assert g.n_vertices == 256
        assert len(g.indptr) == 257

    def test_csr_is_consistent(self):
        g = generate_graph(7, 4, seed=2)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == len(g.indices)
        assert (np.diff(g.indptr) >= 0).all()
        assert (g.indices >= 0).all() and (g.indices < g.n_vertices).all()

    def test_symmetrized(self):
        g = generate_graph(6, 4, seed=3)
        # Every directed edge has its reverse.
        pairs = set()
        for v in range(g.n_vertices):
            for w in g.neighbors(v):
                pairs.add((v, int(w)))
        assert all((w, v) in pairs for v, w in pairs)

    def test_no_self_loops(self):
        g = generate_graph(6, 4, seed=4)
        for v in range(g.n_vertices):
            assert v not in set(g.neighbors(v).tolist())

    def test_deterministic_by_seed(self):
        a = generate_graph(7, 4, seed=5)
        b = generate_graph(7, 4, seed=5)
        c = generate_graph(7, 4, seed=6)
        assert (a.indices == b.indices).all()
        assert len(a.indices) != len(c.indices) or not (a.indices == c.indices).all()

    def test_kronecker_shape(self):
        rng = np.random.default_rng(0)
        e = kronecker_edges(5, 3, rng)
        assert e.shape == (2, 3 << 5)
        assert e.max() < 1 << 5

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            generate_graph(0)


def reference_component_size(g, root=None) -> int:
    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    for v in range(g.n_vertices):
        for w in g.neighbors(v):
            G.add_edge(v, int(w))
    if root is None:
        degrees = g.indptr[1:] - g.indptr[:-1]
        root = int(np.flatnonzero(degrees)[0])
    return len(nx.node_connected_component(G, root))


class TestDistributedBfs:
    @pytest.mark.parametrize("ranks,threads", [(1, 1), (1, 4), (2, 2), (4, 2), (8, 1)])
    def test_visits_exactly_the_component(self, ranks, threads):
        cfg = BfsConfig(scale=8, edgefactor=6, graph_seed=11)
        g = generate_graph(cfg.scale, cfg.edgefactor, seed=cfg.graph_seed)
        expected = reference_component_size(g)
        cl = Cluster(ClusterConfig(
            n_nodes=ranks, threads_per_rank=threads, lock="ticket", seed=0))
        res = run_bfs(cl, cfg)
        assert res.n_visited == expected

    def test_same_result_across_locks(self):
        cfg = BfsConfig(scale=8, edgefactor=6, graph_seed=12)
        visited = set()
        for lock in ("mutex", "ticket", "priority"):
            cl = Cluster(ClusterConfig(
                n_nodes=4, threads_per_rank=2, lock=lock, seed=0))
            visited.add(run_bfs(cl, cfg).n_visited)
        assert len(visited) == 1

    def test_indivisible_partition_rejected(self):
        cl = Cluster(ClusterConfig(n_nodes=3, threads_per_rank=1, lock="ticket"))
        with pytest.raises(ValueError, match="divisible"):
            run_bfs(cl, BfsConfig(scale=8))

    def test_mteps_positive_and_levels_counted(self):
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=2, lock="ticket"))
        res = run_bfs(cl, BfsConfig(scale=9, edgefactor=8))
        assert res.mteps > 0
        assert res.n_levels >= 2
        assert res.edges_scanned > 0

    def test_thread_scaling_single_node(self):
        base = None
        for t in (1, 4):
            cl = Cluster(ClusterConfig(n_nodes=1, threads_per_rank=t, lock="ticket"))
            res = run_bfs(cl, BfsConfig(scale=12))
            if base is None:
                base = res.mteps
            else:
                assert res.mteps > 2.5 * base  # decent scaling at 4 threads

    def test_deterministic(self):
        cfg = BfsConfig(scale=9, edgefactor=8)
        times = set()
        for _ in range(2):
            cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=2,
                                       lock="mutex", seed=4))
            times.add(run_bfs(cl, cfg).elapsed_s)
        assert len(times) == 1

    def test_explicit_root(self):
        cfg = BfsConfig(scale=8, edgefactor=6, graph_seed=11, root=5)
        g = generate_graph(8, 6, seed=11)
        expected = reference_component_size(g, root=5) if g.degree(5) else 1
        cl = Cluster(ClusterConfig(n_nodes=2, threads_per_rank=2, lock="ticket"))
        res = run_bfs(cl, cfg)
        assert res.n_visited == expected
