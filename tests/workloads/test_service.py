"""The open-loop RPC service: arrivals, accounting, overload behavior,
and the deterministic-replay contract for the ``"service:<rank>"`` RNG
stream (same seed => identical fingerprint, on either scheduler)."""

import pytest

from repro.robust import RetryPolicy, RobustConfig
from repro.sim import Simulator
from repro.workloads import (
    ServiceConfig,
    arrival_times,
    run_service,
    service_cluster,
)

#: Small-but-real traffic: ~80 arrivals over 2ms against a 2-thread
#: server with 100k req/s capacity (20us service time).
QUICK = dict(rate_hz=40_000.0, duration_s=0.002)


def run(cfg=None, robust=None, *, seed=3, lock="priority", threads=2, **kw):
    cl = service_cluster(lock=lock, threads_per_rank=threads, seed=seed, **kw)
    return cl, run_service(cl, cfg or ServiceConfig(**QUICK), robust)


# ----------------------------------------------------------------------
# Arrival generation
# ----------------------------------------------------------------------
def _rng(seed=5):
    return Simulator(seed=seed).rng.stream("service:0")


@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
def test_arrivals_sorted_within_horizon_near_mean_rate(shape):
    times = arrival_times(_rng(), shape, 50_000.0, 0.02)
    assert times == sorted(times)
    assert all(0.0 < t < 0.02 for t in times)
    # Long-run mean holds for every shape (MMPP low rate is solved for
    # it; diurnal thinning preserves it).  1000 expected; the modulated
    # process converges slowly (few dwell cycles per horizon), so it
    # gets the wide band.
    lo, hi = (600, 1400) if shape == "bursty" else (800, 1200)
    assert lo <= len(times) <= hi


@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
def test_arrivals_replay_identically_from_the_stream(shape):
    a = arrival_times(_rng(), shape, 50_000.0, 0.01)
    b = arrival_times(_rng(), shape, 50_000.0, 0.01)
    assert a == b
    c = arrival_times(_rng(seed=6), shape, 50_000.0, 0.01)
    assert a != c


def test_bursty_is_burstier_than_poisson():
    # Index of dispersion of per-window counts: ~1 for poisson,
    # substantially above 1 for the modulated process.
    def dispersion(times, horizon, n_bins=40):
        counts = [0] * n_bins
        for t in times:
            counts[min(int(t / horizon * n_bins), n_bins - 1)] += 1
        mean = sum(counts) / n_bins
        var = sum((c - mean) ** 2 for c in counts) / n_bins
        return var / mean

    poi = arrival_times(_rng(), "poisson", 50_000.0, 0.02)
    bur = arrival_times(_rng(), "bursty", 50_000.0, 0.02)
    assert dispersion(bur, 0.02) > 2.0 * dispersion(poi, 0.02)


def test_diurnal_peaks_mid_horizon():
    times = arrival_times(_rng(), "diurnal", 50_000.0, 0.02,
                          diurnal_depth=1.0)
    mid = [t for t in times if 0.005 <= t < 0.015]
    edge = [t for t in times if t < 0.005 or t >= 0.015]
    assert len(mid) > 2.0 * len(edge)


# ----------------------------------------------------------------------
# ServiceConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kw", [
    dict(rate_hz=0.0),
    dict(duration_s=-1.0),
    dict(shape="uniform"),
    dict(burst_factor=1.0),
    dict(burst_factor=4.0),
    dict(burst_dwell_s=-1.0),
    dict(diurnal_depth=1.5),
    dict(req_bytes=0),
    dict(service_ns=-1.0),
    dict(slo_ns=0.0),
])
def test_config_validation(kw):
    with pytest.raises(ValueError):
        ServiceConfig(**kw)


def test_odd_rank_count_rejected():
    from repro.mpi import Cluster, ClusterConfig
    bad = Cluster(ClusterConfig(n_nodes=3, ranks_per_node=1,
                                threads_per_rank=1, lock="mutex", seed=0))
    with pytest.raises(ValueError, match="even rank count"):
        run_service(bad, ServiceConfig(**QUICK))


# ----------------------------------------------------------------------
# Clean-fabric runs
# ----------------------------------------------------------------------
def test_clean_run_every_request_succeeds():
    _, res = run()
    assert res.offered > 0
    assert res.ok == res.offered
    assert res.shed == res.expired == res.failed == 0
    assert res.retries == res.hedges == res.dedup_hits == 0
    assert res.goodput_rps == pytest.approx(res.ok_within_slo / 0.002)
    assert 0.0 < res.p50_us <= res.p99_us <= res.p999_us


def test_all_requests_freed_at_end():
    cl, _ = run(threads=4)
    for rt in cl.runtimes:
        assert rt.dangling_count == 0
        assert rt.stats.completed == rt.stats.freed


def test_latency_percentiles_are_ordered_and_plausible():
    _, res = run()
    # A request costs >= its 20us service time end to end.
    assert res.p50_us >= 20.0
    assert res.p999_us < 1e4  # uncongested: nowhere near 10ms


def test_multiple_client_server_pairs():
    cfg = ServiceConfig(rate_hz=30_000.0, duration_s=0.001)
    cl = service_cluster(lock="priority", threads_per_rank=2, pairs=2, seed=3)
    res = run_service(cl, cfg)
    assert cl.n_ranks == 4
    assert res.ok == res.offered > 0


# ----------------------------------------------------------------------
# Protection mechanisms end to end
# ----------------------------------------------------------------------
def test_overload_unprotected_misses_slo_protected_sheds():
    over = ServiceConfig(rate_hz=150_000.0, duration_s=0.002)
    _, naked = run(over)
    # Open loop past capacity: everything is served, hopelessly late.
    assert naked.ok == naked.offered
    assert naked.shed == 0
    assert naked.ok_within_slo < 0.5 * naked.offered
    _, prot = run(over, RobustConfig.protected(deadline_ns=250_000.0))
    assert prot.shed > 0
    # Deadline-aware admission: whatever is served meets its deadline,
    # so protected goodput beats the collapse.
    assert prot.goodput_rps > naked.goodput_rps
    assert prot.peak_backlog <= naked.peak_backlog


def test_deadline_expiry_without_admission_control():
    # Client-side-only protection: server serves everything, the
    # client's timers expire whatever comes back too late.
    over = ServiceConfig(rate_hz=150_000.0, duration_s=0.002)
    _, res = run(over, RobustConfig(deadline_ns=100_000.0))
    assert res.expired > 0
    assert res.shed == 0
    assert res.ok + res.expired == res.offered


def test_lossy_fabric_recovers_via_retries_and_dedup():
    cfg = ServiceConfig(rate_hz=30_000.0, duration_s=0.002)
    _, res = run(
        cfg,
        RobustConfig(deadline_ns=500_000.0, retry=RetryPolicy(
            rto_ns=150_000.0, max_attempts=4,
        )),
        faults="drop=0.05", reliability=False,
    )
    assert res.retries > 0
    assert res.ok >= 0.9 * res.offered


def test_hedging_duplicates_are_deduplicated():
    # One server thread: the original is served (and its reply cached)
    # before the hedge arrives, so every hedge is a replay-cache hit.
    cfg = ServiceConfig(rate_hz=20_000.0, duration_s=0.002)
    _, res = run(cfg, RobustConfig(retry=RetryPolicy(hedge_ns=30_000.0)),
                 threads=1)
    assert res.hedges > 0
    assert res.dedup_hits > 0
    assert res.ok == res.offered  # hedges never lose replies


def test_retry_budget_denies_when_exhausted():
    # Client uplink black for the whole request horizon + a tiny,
    # non-refilling budget: the first request's retries drain the
    # bucket and every later retry is denied; everything expires.  The
    # outage ends before the stop handshake's resend, so the run still
    # terminates cleanly.
    from repro.faults import FaultPlan, LinkOutage

    cfg = ServiceConfig(rate_hz=30_000.0, duration_s=0.001,
                        slo_ns=400_000.0)
    _, res = run(
        cfg,
        RobustConfig(deadline_ns=400_000.0, retry=RetryPolicy(
            rto_ns=100_000.0, max_attempts=3, budget_cap=2,
            budget_refill=0.0,
        )),
        faults=FaultPlan(outages=(LinkOutage(0, 0.0, 0.0015),),
                         watchdog_interval_ns=0.0),
        reliability=False,
    )
    assert res.ok == 0
    assert res.retries == 2  # exactly the budget
    assert res.retries_denied > 0
    assert res.expired == res.offered


# ----------------------------------------------------------------------
# Determinism / replay (the "service:<rank>" stream contract)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", ["poisson", "bursty", "diurnal"])
def test_replay_bit_identical_per_shape(shape):
    cfg = ServiceConfig(rate_hz=40_000.0, duration_s=0.002, shape=shape)
    _, a = run(cfg, RobustConfig.protected(deadline_ns=250_000.0))
    _, b = run(cfg, RobustConfig.protected(deadline_ns=250_000.0))
    assert a == b
    assert a.fingerprint == b.fingerprint


def test_heap_and_calendar_schedulers_agree():
    cfg = ServiceConfig(**QUICK)
    _, heap = run(cfg, scheduler="heap")
    _, cal = run(cfg, scheduler="calendar")
    assert heap == cal


def test_different_seeds_differ():
    _, a = run(seed=3)
    _, b = run(seed=4)
    assert a.fingerprint != b.fingerprint


def test_disabled_robustness_is_bit_identical_to_absent():
    _, absent = run(robust=None)
    _, disabled = run(robust=RobustConfig.none())
    assert absent == disabled
    assert absent.fingerprint == disabled.fingerprint


def test_service_cluster_defaults_to_event_driven_wait():
    assert service_cluster().config.event_driven_wait
    assert not service_cluster(
        event_driven_wait=False).config.event_driven_wait
