"""Tests for the RMA benchmark with async progress."""

import pytest

from repro.mpi import Cluster, ClusterConfig
from repro.workloads import RmaConfig, run_rma


def make_cluster(lock="ticket", ranks=4, async_progress=True, seed=3):
    return Cluster(ClusterConfig(
        n_nodes=ranks, threads_per_rank=1, lock=lock,
        async_progress=async_progress, seed=seed))


def test_requires_async_progress():
    cl = make_cluster(async_progress=False)
    with pytest.raises(ValueError, match="async_progress"):
        run_rma(cl, RmaConfig())


def test_requires_two_ranks():
    cl = Cluster(ClusterConfig(
        n_nodes=1, threads_per_rank=1, lock="ticket", async_progress=True))
    with pytest.raises(ValueError, match="2 ranks"):
        run_rma(cl, RmaConfig())


def test_unknown_op_rejected():
    cl = make_cluster()
    with pytest.raises(ValueError, match="unknown RMA op"):
        run_rma(cl, RmaConfig(op="swap"))


@pytest.mark.parametrize("op", ["put", "get", "acc"])
def test_ops_complete_and_rate_positive(op):
    cl = make_cluster()
    res = run_rma(cl, RmaConfig(op=op, element_size=512, n_ops=12))
    assert res.rate_k > 0
    assert res.n_ops == 12


def test_rate_decreases_with_element_size():
    small = run_rma(make_cluster(), RmaConfig(op="put", element_size=8, n_ops=12))
    big = run_rma(make_cluster(), RmaConfig(op="put", element_size=1 << 20, n_ops=12))
    assert small.rate_k > big.rate_k


def test_fairness_speedup_over_mutex():
    """The paper's Fig. 9 headline: the async progress thread
    monopolizes a mutex-guarded runtime."""
    m = run_rma(make_cluster(lock="mutex", ranks=8),
                RmaConfig(op="put", element_size=1024, n_ops=24))
    t = run_rma(make_cluster(lock="ticket", ranks=8),
                RmaConfig(op="put", element_size=1024, n_ops=24))
    assert t.rate_k > 1.4 * m.rate_k


def test_accumulate_slower_than_put():
    p = run_rma(make_cluster(), RmaConfig(op="put", element_size=1 << 16, n_ops=12))
    a = run_rma(make_cluster(), RmaConfig(op="acc", element_size=1 << 16, n_ops=12))
    assert a.rate_k < p.rate_k


def test_deterministic():
    a = run_rma(make_cluster(seed=9), RmaConfig(op="get", n_ops=8))
    b = run_rma(make_cluster(seed=9), RmaConfig(op="get", n_ops=8))
    assert a.elapsed_s == b.elapsed_s
