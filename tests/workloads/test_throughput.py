"""Tests for the multithreaded throughput benchmark."""

import pytest

from repro.workloads import ThroughputConfig, run_throughput, throughput_cluster


def run(lock="ticket", threads=2, size=64, windows=2, **kw):
    cl = throughput_cluster(lock=lock, threads_per_rank=threads, seed=3, **kw)
    return cl, run_throughput(cl, ThroughputConfig(msg_size=size, n_windows=windows))


def test_message_accounting():
    cl, res = run(threads=2, windows=3)
    assert res.total_messages == 2 * 64 * 3
    assert res.receiver_stats["recvs_issued"] == res.total_messages
    assert res.sender_stats["sends_issued"] == res.total_messages
    assert res.msg_rate_k == pytest.approx(
        res.total_messages / res.elapsed_s / 1e3
    )


def test_all_requests_freed_at_end():
    cl, res = run(threads=4)
    for rt in cl.runtimes:
        assert rt.dangling_count == 0
        assert rt.stats.completed == rt.stats.freed


def test_dangling_profiler_sampled():
    cl, res = run(threads=4)
    assert res.dangling.n_samples > 0
    assert res.dangling.maximum >= res.dangling.mean


def test_rate_decreases_with_message_size():
    _, small = run(size=64)
    _, big = run(size=65536)
    assert small.msg_rate_k > big.msg_rate_k


def test_deterministic_given_seed():
    _, a = run(threads=4)
    _, b = run(threads=4)
    assert a.elapsed_s == b.elapsed_s
    assert a.msg_rate_k == b.msg_rate_k


def test_different_seeds_differ():
    cl1 = throughput_cluster(lock="mutex", threads_per_rank=4, seed=1)
    cl2 = throughput_cluster(lock="mutex", threads_per_rank=4, seed=2)
    r1 = run_throughput(cl1, ThroughputConfig(msg_size=64, n_windows=2))
    r2 = run_throughput(cl2, ThroughputConfig(msg_size=64, n_windows=2))
    assert r1.elapsed_s != r2.elapsed_s


def test_mutex_degrades_with_threads():
    """The paper's headline: multithreaded throughput collapses under
    the mutex (Fig. 2a)."""
    _, one = run(lock="mutex", threads=1, size=8, windows=4)
    _, eight = run(lock="mutex", threads=8, size=8, windows=4)
    assert eight.msg_rate_k < 0.5 * one.msg_rate_k


def test_ticket_beats_mutex_small_messages():
    _, m = run(lock="mutex", threads=4, size=8, windows=4)
    _, t = run(lock="ticket", threads=4, size=8, windows=4)
    assert t.msg_rate_k > 1.2 * m.msg_rate_k


def test_ticket_dangling_below_mutex():
    _, m = run(lock="mutex", threads=8, size=8, windows=4)
    _, t = run(lock="ticket", threads=8, size=8, windows=4)
    assert t.dangling.mean < m.dangling.mean
