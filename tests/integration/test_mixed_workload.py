"""Integration stress test: heterogeneous traffic on one cluster.

Pt2pt streams, collectives, RMA, and probe-driven consumers all share
the same runtimes, locks, and fabric concurrently -- the kind of mixed
load a real MPI application generates.  Verifies global invariants at
the end: every request freed, queues empty, data intact.
"""

import operator

import pytest

from repro.mpi import Cluster, ClusterConfig, allocate_windows
from repro.mpi.collectives import allgather, allreduce, barrier


@pytest.mark.parametrize("lock", ["mutex", "ticket", "priority"])
def test_mixed_workload_all_invariants(lock):
    cl = Cluster(ClusterConfig(
        n_nodes=4, threads_per_rank=3, lock=lock, seed=21,
        async_progress=True,
    ))
    wins = allocate_windows(cl.runtimes)
    P = cl.n_ranks
    results = {"stream": {}, "coll": {}, "probe": {}}

    # Thread 0 of each rank: pt2pt ring stream (mixed sizes).
    def streamer(rank):
        th = cl.thread(rank, 0)
        nxt, prv = (rank + 1) % P, (rank - 1) % P

        def gen():
            got = []
            for i, size in enumerate((64, 4096, 1 << 17)):
                sreq = yield from th.isend(nxt, size, tag=100 + i,
                                           data=(rank, i))
                rreq = yield from th.irecv(source=prv, nbytes=size,
                                           tag=100 + i)
                yield from th.waitall((sreq, rreq))
                got.append(rreq.data)
            results["stream"][rank] = got
        return gen()

    # Thread 1: collectives + RMA interleaved.
    def mixer(rank):
        th = cl.thread(rank, 1)

        def gen():
            total = yield from allreduce(th, cl.world, rank, operator.add)
            yield from wins[rank].put(th, (rank + 1) % P, 2048)
            yield from barrier(th, cl.world)
            all_vals = yield from allgather(th, cl.world, rank * 2)
            results["coll"][rank] = (total, all_vals)
        return gen()

    # Thread 2: probe-driven consumer.
    def prober(rank):
        th = cl.thread(rank, 2)
        src = (rank + 2) % P

        def gen():
            dst = (rank - 2) % P
            yield from th.send(dst, 256, tag=7, data=f"probe-{rank}")
            env = yield from th.probe(source=src, tag=7)
            data = yield from th.recv(source=env[0], tag=7)
            results["probe"][rank] = data
        return gen()

    gens = []
    for rank in range(P):
        gens.extend([streamer(rank), mixer(rank), prober(rank)])
    cl.run_workload(gens)

    # --- data integrity ------------------------------------------------
    for rank in range(P):
        prv = (rank - 1) % P
        assert results["stream"][rank] == [(prv, 0), (prv, 1), (prv, 2)]
        total, all_vals = results["coll"][rank]
        assert total == P * (P - 1) // 2
        assert all_vals == [r * 2 for r in range(P)]
        assert results["probe"][rank] == f"probe-{(rank + 2) % P}"

    # --- runtime invariants ---------------------------------------------
    for rt in cl.runtimes:
        assert rt.dangling_count == 0, f"rank {rt.rank} leaked requests"
        assert len(rt.posted_q) == 0
        assert len(rt.unexp_q) == 0
        assert rt.stats.completed == rt.stats.freed
        assert len(rt._pending_sends) == 0
    for w in wins.values():
        # Every rank received exactly one put.
        assert w.puts_served == 1


def test_mixed_workload_deterministic():
    def run_once():
        cl = Cluster(ClusterConfig(
            n_nodes=2, threads_per_rank=2, lock="mutex", seed=33))
        t0a, t0b = cl.thread(0, 0), cl.thread(0, 1)
        t1a, t1b = cl.thread(1, 0), cl.thread(1, 1)

        def ping(th, peer, tag):
            def gen():
                for _ in range(5):
                    yield from th.send(peer, 512, tag=tag)
                    yield from th.recv(source=peer, tag=tag)
            return gen()

        def pong(th, peer, tag):
            def gen():
                for _ in range(5):
                    yield from th.recv(source=peer, tag=tag)
                    yield from th.send(peer, 512, tag=tag)
            return gen()

        cl.run_workload([
            ping(t0a, 1, 0), ping(t0b, 1, 1),
            pong(t1a, 0, 0), pong(t1b, 0, 1),
        ])
        return cl.sim.now

    assert run_once() == run_once()
