"""The reproduced shapes must hold across seeds, not just seed 1.

Runs the cheapest experiments under two additional seeds; anything
seed-sensitive here would mean the calibration was overfit to one
random stream.
"""

import pytest

from repro.experiments import run_experiment

CHEAP = ["fig2b", "fig5a", "fig5b", "fig10a", "fig11a", "fig11b"]


@pytest.mark.parametrize("name", CHEAP)
@pytest.mark.parametrize("seed", [2, 3])
def test_shape_checks_hold_across_seeds(name, seed):
    result = run_experiment(name, quick=True, seed=seed)
    assert result.ok, (
        f"{name} seed={seed} failed: {result.failed_checks()}\n{result.format()}"
    )
