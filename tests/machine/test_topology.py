"""Tests for the machine model (paper Table 1)."""

import pytest

from repro.machine import (
    CostModel,
    Machine,
    MachineSpec,
    Proximity,
    ThreadCtx,
    compact_binding,
    explicit_binding,
    nehalem_node,
    scatter_binding,
)


def test_table1_default_spec():
    m = nehalem_node()
    assert m.spec.architecture == "Nehalem"
    assert m.spec.processor == "Xeon E5540"
    assert m.spec.n_sockets == 2
    assert m.spec.cores_per_socket == 4
    assert m.spec.l3_kib == 8192
    assert m.spec.l2_kib == 256
    assert m.spec.interconnect == "Mellanox QDR"
    assert m.n_cores == 8


def test_core_indices_are_global_and_socket_assigned():
    m = nehalem_node()
    assert [c.index for c in m.cores] == list(range(8))
    assert [c.socket for c in m.cores] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert len(m.sockets) == 2
    assert [c.index for c in m.sockets[1].cores] == [4, 5, 6, 7]


def test_proximity_classes():
    m = nehalem_node()
    c0, c1, c4 = m.core(0), m.core(1), m.core(4)
    assert c0.proximity(c0) == Proximity.SAME_CORE
    assert c0.proximity(c1) == Proximity.SAME_SOCKET
    assert c0.proximity(c4) == Proximity.REMOTE
    assert c4.proximity(c0) == Proximity.REMOTE


def test_proximity_cross_node_rejected():
    a, b = nehalem_node(0), nehalem_node(1)
    with pytest.raises(ValueError):
        a.core(0).proximity(b.core(0))


def test_custom_spec():
    m = Machine(spec=MachineSpec(n_sockets=4, cores_per_socket=2))
    assert m.n_cores == 8
    assert [c.socket for c in m.cores] == [0, 0, 1, 1, 2, 2, 3, 3]


def test_compact_binding_fills_socket_first():
    m = nehalem_node()
    cores = compact_binding(m, 4)
    assert [c.socket for c in cores] == [0, 0, 0, 0]
    cores = compact_binding(m, 8)
    assert [c.socket for c in cores] == [0] * 4 + [1] * 4


def test_compact_binding_wraps_beyond_cores():
    m = nehalem_node()
    cores = compact_binding(m, 10)
    assert cores[8].index == 0 and cores[9].index == 1


def test_scatter_binding_round_robins_sockets():
    m = nehalem_node()
    cores = scatter_binding(m, 4)
    assert [c.socket for c in cores] == [0, 1, 0, 1]
    assert len({c.index for c in cores}) == 4


def test_binding_rejects_zero_threads():
    m = nehalem_node()
    with pytest.raises(ValueError):
        compact_binding(m, 0)
    with pytest.raises(ValueError):
        scatter_binding(m, 0)


def test_explicit_binding():
    m = nehalem_node()
    cores = explicit_binding(m, [7, 0, 3])
    assert [c.index for c in cores] == [7, 0, 3]


def test_thread_ctx_identity_and_proximity():
    m = nehalem_node()
    a = ThreadCtx(m.core(0), name="a")
    b = ThreadCtx(m.core(5), name="b")
    assert a.tid != b.tid
    assert a.socket == 0 and b.socket == 1
    assert a.proximity(b) == Proximity.REMOTE


def test_cost_model_orders_proximity():
    cm = CostModel()
    assert cm.atomic(Proximity.SAME_CORE) < cm.atomic(Proximity.SAME_SOCKET)
    assert cm.atomic(Proximity.SAME_SOCKET) < cm.atomic(Proximity.REMOTE)
    assert cm.handoff(Proximity.SAME_CORE) < cm.handoff(Proximity.REMOTE)


def test_cost_model_futex_dwarfs_cas():
    cm = CostModel()
    # The monopolization mechanism requires a futex wake to be far more
    # expensive than a local CAS (paper 2.2).
    assert cm.futex_wake > 10 * cm.atomic(Proximity.REMOTE)


def test_cost_model_copy_time_scales():
    cm = CostModel()
    assert cm.copy_time(0) == 0.0
    assert cm.copy_time(2000) == pytest.approx(2 * cm.copy_time(1000))
    assert cm.copy_time(1000, unexpected=True) == pytest.approx(
        cm.unexpected_copy_factor * cm.copy_time(1000)
    )


def test_cost_model_overrides():
    cm = CostModel().with_overrides(futex_wake_ns=9999.0)
    assert cm.futex_wake == pytest.approx(9999e-9)
    # Original untouched (frozen dataclass semantics).
    assert CostModel().futex_wake_ns != 9999.0
