"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2a" in out and "fig12b" in out


def test_spec_prints_table1(capsys):
    assert main(["spec"]) == 0
    out = capsys.readouterr().out
    assert "Nehalem" in out
    assert "Xeon E5540" in out
    assert "Mellanox QDR" in out


def test_locks_lists_all_methods(capsys):
    assert main(["locks"]) == 0
    out = capsys.readouterr().out
    for name in ("mutex", "ticket", "priority", "mcs", "cohort", "clh"):
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "fig2b"]) == 0
    out = capsys.readouterr().out
    assert "compact" in out and "scatter" in out
    assert "[PASS]" in out


def test_run_format_json(capsys):
    import json

    assert main(["run", "fig2b", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["exp_id"] == "fig2b"
    assert doc["ok"] is True
    assert doc["headers"] and doc["rows"]


def test_trace_writes_chrome_trace(capsys, tmp_path):
    import json

    out = tmp_path / "trace.json"
    counters = tmp_path / "counters.json"
    assert main(["trace", "fig2b", "--out", str(out),
                 "--counters", str(counters)]) == 0
    printed = capsys.readouterr().out
    assert "chrome trace written" in printed

    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ns"
    names = {e["name"] for e in doc["traceEvents"]}
    assert "cs.main" in names
    assert any(n.endswith(".hold") for n in names)

    series = json.loads(counters.read_text())
    assert any(k.startswith("mpi/") for k in series)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_throughput_command(capsys):
    assert main(["throughput", "--lock", "ticket", "--threads", "2",
                 "--size", "64", "--windows", "2"]) == 0
    out = capsys.readouterr().out
    assert "pt2pt throughput" in out
    assert "ticket" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_bad_lock_choice_rejected():
    with pytest.raises(SystemExit):
        main(["throughput", "--lock", "bogus"])


# ----------------------------------------------------------------------
# Partial-failure isolation in `run` (one crash must not eat the sweep)
# ----------------------------------------------------------------------

def _fake_registry(monkeypatch):
    """Two fake experiments: expA succeeds, expB raises mid-sweep."""
    import repro.cli as cli
    from repro.experiments.base import ExperimentResult

    def fake_run(name, quick=True, seed=0):
        if name == "expB":
            raise RuntimeError("kaboom")
        return ExperimentResult(
            exp_id=name, title="fake", headers=["h"], rows=[["v"]],
            checks={"always": True},
        )

    monkeypatch.setattr(cli, "EXPERIMENTS", {"expA": None, "expB": None})
    monkeypatch.setattr(cli, "run_experiment", fake_run)


def test_run_all_json_survives_one_crash(capsys, monkeypatch):
    import json

    _fake_registry(monkeypatch)
    assert main(["run", "all", "--format", "json"]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert isinstance(payload, list) and len(payload) == 2
    assert payload[0]["exp_id"] == "expA" and payload[0]["ok"] is True
    assert payload[1] == {"exp_id": "expB", "error": "RuntimeError: kaboom"}
    assert "expB" in captured.err


def test_run_all_table_survives_one_crash(capsys, monkeypatch):
    _fake_registry(monkeypatch)
    assert main(["run", "all"]) == 1
    captured = capsys.readouterr()
    assert "[expA] fake" in captured.out  # the survivor still printed
    assert "ERROR" in captured.err and "kaboom" in captured.err


def test_run_single_crash_json_payload(capsys, monkeypatch):
    import json

    _fake_registry(monkeypatch)
    assert main(["run", "expB", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"exp_id": "expB", "error": "RuntimeError: kaboom"}


# ----------------------------------------------------------------------
# --quick / --paper exclusivity and --seed default alignment
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cmd", [
    ["run", "fig2b", "--quick", "--paper"],
    ["sanitize", "fig2b", "--quick", "--paper"],
    ["ablate", "--quick", "--paper"],
])
def test_quick_and_paper_are_mutually_exclusive(cmd):
    with pytest.raises(SystemExit) as exc:
        main(cmd)
    assert exc.value.code == 2


def test_seed_default_matches_run_experiment():
    from repro.cli import build_parser

    ap = build_parser()
    for argv in (["run", "x"], ["sanitize", "x"], ["trace", "x"],
                 ["throughput"], ["ablate"]):
        assert ap.parse_args(argv).seed == 0, argv


# ----------------------------------------------------------------------
# ablate subcommand
# ----------------------------------------------------------------------

def test_ablate_unknown_experiment(capsys):
    assert main(["ablate", "--experiments", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_ablate_unknown_component(capsys):
    assert main(["ablate", "--experiments", "fig2b",
                 "--components", "bogus"]) == 2
    assert "unknown component" in capsys.readouterr().err


def test_ablate_runs_and_resumes(capsys, tmp_path):
    journal = tmp_path / "ablate.jsonl"
    argv = ["ablate", "--experiments", "fig2b", "--components", "lock",
            "--quick", "--journal", str(journal), "--report"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "matrix: 2 cells, 0 cached, 2 new cells" in out
    assert "Component importance" in out
    assert "no-lock" in out or "lock" in out
    # Same journal, same spec: nothing re-executes.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "matrix: 2 cells, 2 cached, 0 new cells" in out
