"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2a" in out and "fig12b" in out


def test_spec_prints_table1(capsys):
    assert main(["spec"]) == 0
    out = capsys.readouterr().out
    assert "Nehalem" in out
    assert "Xeon E5540" in out
    assert "Mellanox QDR" in out


def test_locks_lists_all_methods(capsys):
    assert main(["locks"]) == 0
    out = capsys.readouterr().out
    for name in ("mutex", "ticket", "priority", "mcs", "cohort", "clh"):
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "fig2b"]) == 0
    out = capsys.readouterr().out
    assert "compact" in out and "scatter" in out
    assert "[PASS]" in out


def test_run_format_json(capsys):
    import json

    assert main(["run", "fig2b", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["exp_id"] == "fig2b"
    assert doc["ok"] is True
    assert doc["headers"] and doc["rows"]


def test_trace_writes_chrome_trace(capsys, tmp_path):
    import json

    out = tmp_path / "trace.json"
    counters = tmp_path / "counters.json"
    assert main(["trace", "fig2b", "--out", str(out),
                 "--counters", str(counters)]) == 0
    printed = capsys.readouterr().out
    assert "chrome trace written" in printed

    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ns"
    names = {e["name"] for e in doc["traceEvents"]}
    assert "cs.main" in names
    assert any(n.endswith(".hold") for n in names)

    series = json.loads(counters.read_text())
    assert any(k.startswith("mpi/") for k in series)


def test_trace_unknown_experiment(capsys):
    assert main(["trace", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_throughput_command(capsys):
    assert main(["throughput", "--lock", "ticket", "--threads", "2",
                 "--size", "64", "--windows", "2"]) == 0
    out = capsys.readouterr().out
    assert "pt2pt throughput" in out
    assert "ticket" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_bad_lock_choice_rejected():
    with pytest.raises(SystemExit):
        main(["throughput", "--lock", "bogus"])
