"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig2a" in out and "fig12b" in out


def test_spec_prints_table1(capsys):
    assert main(["spec"]) == 0
    out = capsys.readouterr().out
    assert "Nehalem" in out
    assert "Xeon E5540" in out
    assert "Mellanox QDR" in out


def test_locks_lists_all_methods(capsys):
    assert main(["locks"]) == 0
    out = capsys.readouterr().out
    for name in ("mutex", "ticket", "priority", "mcs", "cohort", "clh"):
        assert name in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(capsys):
    assert main(["run", "fig2b"]) == 0
    out = capsys.readouterr().out
    assert "compact" in out and "scatter" in out
    assert "[PASS]" in out


def test_throughput_command(capsys):
    assert main(["throughput", "--lock", "ticket", "--threads", "2",
                 "--size", "64", "--windows", "2"]) == 0
    out = capsys.readouterr().out
    assert "pt2pt throughput" in out
    assert "ticket" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_bad_lock_choice_rejected():
    with pytest.raises(SystemExit):
        main(["throughput", "--lock", "bogus"])
