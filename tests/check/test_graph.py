"""The shared call-graph layer: what resolves, what safely does not,
and the suppression-comment grammar both tools share."""

import ast

import pytest

from repro.check.graph import (
    CallGraph,
    GraphError,
    SourceModule,
    iter_py_files,
    load_module,
    module_name_for,
)
from repro.check.lint import Finding


def build(**modules):
    """CallGraph over ``{modname: source}`` (no filesystem involved)."""
    g = CallGraph()
    for modname, src in modules.items():
        g.add_module(SourceModule(f"{modname}.py", src, modname=modname))
    g.finalize()
    return g


def calls_in(g, fn_key):
    """(call node, resolved FunctionInfo or None) for every call in
    ``fn_key``, in source order."""
    fi = g.functions[fn_key]
    out = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.Call):
            out.append((node, g.resolve_call(node, fi)))
    return out


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_module_function_and_import_resolution():
    g = build(
        **{
            "pkg.a": "def helper():\n    pass\n",
            "pkg.b": (
                "from pkg.a import helper\n"
                "from .a import helper as relative_alias\n"
                "def caller():\n"
                "    helper()\n"
                "    relative_alias()\n"
            ),
        }
    )
    resolved = [fi for _c, fi in calls_in(g, "pkg.b.caller")]
    assert [fi.key for fi in resolved] == ["pkg.a.helper", "pkg.a.helper"]


def test_self_method_resolves_through_cross_module_base():
    g = build(
        **{
            "pkg.base": (
                "class Base:\n"
                "    def shared(self):\n"
                "        pass\n"
            ),
            "pkg.derived": (
                "from pkg.base import Base\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        self.shared()\n"
                "        self.missing()\n"
            ),
        }
    )
    resolved = calls_in(g, "pkg.derived.Child.go")
    assert resolved[0][1].key == "pkg.base.Base.shared"
    assert resolved[1][1] is None  # not defined anywhere: never a guess


def test_nested_defs_resolve_through_lexical_scope_chain():
    g = build(
        mod=(
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "    def middle():\n"
            "        inner()\n"
            "    middle()\n"
        )
    )
    assert "mod.outer.<locals>.inner" in g.functions
    (_c, mid) = calls_in(g, "mod.outer")[0]
    assert mid.key == "mod.outer.<locals>.middle"
    (_c, inn) = calls_in(g, "mod.outer.<locals>.middle")[0]
    assert inn.key == "mod.outer.<locals>.inner"


def test_constructor_classmethod_and_attr_type_inference():
    g = build(
        mod=(
            "class Engine:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "    def start(self):\n"
            "        pass\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self.engine = Engine()\n"
            "    def go(self):\n"
            "        self.engine.start()\n"
            "def make():\n"
            "    Engine()\n"
            "    Engine.start(None)\n"
        )
    )
    resolved = [fi for _c, fi in calls_in(g, "mod.make")]
    assert resolved[0].key == "mod.Engine.__init__"
    assert resolved[1].key == "mod.Engine.start"
    # self.engine.start() via the inferred attribute type.
    inner = [fi for _c, fi in calls_in(g, "mod.Holder.go")]
    assert inner[0].key == "mod.Engine.start"


def test_module_alias_attribute_chain():
    g = build(
        **{
            "pkg.a": "def fn():\n    pass\n",
            "pkg.b": (
                "from pkg import a\n"
                "def caller():\n"
                "    a.fn()\n"
            ),
        }
    )
    (_c, fi) = calls_in(g, "pkg.b.caller")[0]
    assert fi.key == "pkg.a.fn"


def test_resolve_callable_handles_bare_callback_expressions():
    # The continuation-discipline rule passes callback *expressions*
    # (not calls): self.method and a local name must both resolve.
    g = build(
        mod=(
            "class C:\n"
            "    def cb(self, r):\n"
            "        pass\n"
            "    def install(self, req):\n"
            "        req.attach(self.cb)\n"
            "def installer(req):\n"
            "    def on_done(r):\n"
            "        pass\n"
            "    req.attach(on_done)\n"
        )
    )
    install = g.functions["mod.C.install"]
    attach_arg = install.node.body[0].value.args[0]
    assert g.resolve_callable(attach_arg, install).key == "mod.C.cb"
    installer = g.functions["mod.installer"]
    arg = installer.node.body[1].value.args[0]
    assert g.resolve_callable(arg, installer).key == (
        "mod.installer.<locals>.on_done"
    )


# ----------------------------------------------------------------------
# Suppression grammar (shared by simlint and deadcheck)
# ----------------------------------------------------------------------
def _mod(line):
    return SourceModule("x.py", f"import os  {line}\n", modname="x")


def _finding(rule, line=1):
    return Finding("x.py", line, 0, rule, "")


def test_suppression_comma_separated_rules():
    mod = _mod("# simcheck: disable=wall-clock, unseeded-rng")
    assert not mod.allows(_finding("wall-clock"))
    assert not mod.allows(_finding("unseeded-rng"))
    assert mod.allows(_finding("lock-pairing"))


def test_suppression_all_silences_every_rule():
    mod = _mod("# simcheck: disable=all")
    assert not mod.allows(_finding("wall-clock"))
    assert not mod.allows(_finding("lock-order-cycle"))


def test_suppression_with_trailing_comment():
    mod = _mod("# simcheck: disable=wall-clock  # justified: fixture")
    assert not mod.allows(_finding("wall-clock"))
    assert mod.allows(_finding("unseeded-rng"))


def test_suppression_unknown_rule_suppresses_nothing():
    # An unknown name in a disable list is inert -- the real finding
    # still fires and nothing crashes.
    mod = _mod("# simcheck: disable=no-such-rule")
    assert mod.allows(_finding("wall-clock"))


def test_suppression_is_line_scoped():
    mod = _mod("# simlint: disable=wall-clock")
    assert mod.allows(_finding("wall-clock", line=2))


def test_both_tool_prefixes_are_interchangeable():
    assert not _mod("# simlint: disable=x-rule").allows(_finding("x-rule"))
    assert not _mod("# simcheck: disable=x-rule").allows(_finding("x-rule"))


# ----------------------------------------------------------------------
# File walking / loading (the shared exit-code-2 machinery)
# ----------------------------------------------------------------------
def test_module_name_for_walks_packages(tmp_path):
    pkg = tmp_path / "top" / "sub"
    pkg.mkdir(parents=True)
    (tmp_path / "top" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "leaf.py").write_text("")
    assert module_name_for(pkg / "leaf.py") == "top.sub.leaf"
    assert module_name_for(pkg / "__init__.py") == "top.sub"
    loose = tmp_path / "loose.py"
    loose.write_text("")
    assert module_name_for(loose) == "loose"


def test_iter_py_files_missing_path_raises():
    with pytest.raises(GraphError, match="no such file"):
        list(iter_py_files(["definitely/not/here.py"]))


def test_iter_py_files_exclude_skips_subtree(tmp_path):
    keep = tmp_path / "keep.py"
    keep.write_text("")
    skipdir = tmp_path / "skipme"
    skipdir.mkdir()
    (skipdir / "dropped.py").write_text("")
    got = list(iter_py_files([str(tmp_path)], exclude=[str(skipdir)]))
    assert got == [keep]


def test_load_module_diagnoses_unreadable_and_unparseable(tmp_path):
    binary = tmp_path / "binary.py"
    binary.write_bytes(b"\xff\xfe\x00 not utf-8")
    with pytest.raises(GraphError, match="cannot read"):
        load_module(binary)
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    with pytest.raises(GraphError, match="cannot parse"):
        load_module(broken)
