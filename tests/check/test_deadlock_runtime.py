"""deadcheck's runtime half: the waits-for graph finds real ABBA
deadlocks through both failure paths (idle-with-live-threads and the
watchdog early warning), the order witness records grant-time edges,
and the observed edges on a registered experiment match the static
order graph exactly."""

import pytest

from repro.check.deadcheck import classify_witness, run_deadcheck
from repro.check.sanitize import (
    DeadlockDetector,
    OrderWitness,
    WaitsForGraph,
    run_order_witness,
)
from repro.faults import FaultPlan, ProgressStallError
from repro.locks import TicketLock
from repro.machine import CostModel
from repro.mpi import Cluster, ClusterConfig
from repro.obs import Instrument
from repro.sim.engine import SimulationError
from repro.sim.sync import Signal

from ..conftest import make_threads


def _abba(sim, lock_a, lock_b, ctx1, ctx2, hold=1e-6):
    """Two processes taking the same lock pair in opposite orders."""

    def one(ctx):  # simcheck: disable=lock-pairing  # deadlocks by design
        yield from lock_a.acquire(ctx)
        yield sim.timeout(hold)
        yield from lock_b.acquire(ctx)  # pragma: no cover - deadlocks

    def two(ctx):  # simcheck: disable=lock-pairing  # deadlocks by design
        yield from lock_b.acquire(ctx)
        yield sim.timeout(hold)
        yield from lock_a.acquire(ctx)  # pragma: no cover - deadlocks

    return [one(ctx1), two(ctx2)]


# ----------------------------------------------------------------------
# WaitsForGraph
# ----------------------------------------------------------------------
def test_waits_for_graph_reports_abba_cycle(sim, machine, costs):
    lock_a = TicketLock(sim, costs, name="A")
    lock_b = TicketLock(sim, costs, name="B")
    t1, t2 = make_threads(machine, 2)
    procs = [
        sim.process(g, name=f"w{i}")
        for i, g in enumerate(_abba(sim, lock_a, lock_b, t1, t2))
    ]
    sim.run()  # heap runs dry with both processes still live
    assert all(p.is_alive for p in procs)

    g = WaitsForGraph()
    g.add_lock(lock_a)
    g.add_lock(lock_b)
    cycles = g.cycles()
    assert len(cycles) == 1
    desc = g.describe(cycles[0])
    # The walk visits every member and closes: 2 locks + 2 threads.
    assert desc.count("->") == 4
    for label in ("A", "B", "t0", "t1"):
        assert label in desc


def test_waits_for_graph_no_cycle_without_hold_and_wait(sim, machine, costs):
    lock_a = TicketLock(sim, costs, name="A")
    t1, t2 = make_threads(machine, 2)

    def worker(ctx):
        yield from lock_a.acquire(ctx)
        yield sim.timeout(1e-6)
        lock_a.release(ctx)

    sim.process(worker(t1))
    sim.process(worker(t2))
    sim.run(until=5e-7)  # mid-flight: one owner, one waiter
    g = WaitsForGraph()
    g.add_lock(lock_a)
    assert g.cycles() == []


def test_condition_waiters_show_in_graph(sim, machine):
    activity = Signal(sim, name="activity@rank0")
    (ctx,) = make_threads(machine, 1)

    def parked():
        yield activity.wait(ctx)  # pragma: no cover - never fires

    sim.process(parked())
    sim.run()
    assert activity.waiters == (ctx,)
    g = WaitsForGraph()
    g.add_condition(activity)
    # A parked thread appears (for stall dumps) but conditions have no
    # outgoing edges, so they never fabricate a cycle.
    assert g.cycles() == []
    assert any(kind == "cond" for kind, _ in g._adj)


# ----------------------------------------------------------------------
# DeadlockDetector through the cluster failure paths
# ----------------------------------------------------------------------
def _abba_cluster(**cfg):
    bus = Instrument()
    events = []
    bus.subscribe(events.append, categories=("check",))
    cl = Cluster(ClusterConfig(
        n_nodes=1, threads_per_rank=2, lock="ticket", seed=5, obs=bus,
        **cfg,
    ))
    det = DeadlockDetector(cl).attach()
    costs = CostModel()
    lock_a = TicketLock(cl.sim, costs, name="A")
    lock_b = TicketLock(cl.sim, costs, name="B")
    work = _abba(
        cl.sim, lock_a, lock_b, cl.thread(0, 0).ctx, cl.thread(0, 1).ctx,
    )
    return cl, det, work, events


def test_idle_stall_path_detects_abba_cycle():
    cl, det, work, events = _abba_cluster()
    assert cl.watchdog is None  # this cluster fails via the idle path
    with pytest.raises(SimulationError):
        cl.run_workload(work)
    assert det.checks == 1
    assert len(det.cycles) == 1
    assert "A" in det.cycles[0] and "B" in det.cycles[0]
    dumped = [ev for ev in events if ev.name == "deadlock.cycle"]
    assert len(dumped) == 1
    assert dumped[0].args["reason"] == "idle-with-live-threads"
    assert dumped[0].args["cycle"] == det.cycles[0]


def test_watchdog_warning_path_detects_abba_cycle():
    # reorder alone never perturbs a no-traffic run, but it makes the
    # plan active so the watchdog is installed.
    cl, det, work, events = _abba_cluster(
        faults=FaultPlan(reorder=1.0, watchdog_interval_ns=20_000.0,
                         watchdog_grace=3),
    )
    assert cl.watchdog is not None

    def ticker():
        # Keeps the event heap alive so the watchdog keeps sampling the
        # frozen progress metric instead of seeing an empty queue.
        while True:
            yield cl.sim.timeout(1e-5)

    cl.spawn(ticker(), name="ticker")
    with pytest.raises(ProgressStallError) as exc_info:
        cl.run_workload(work)
    # The early warning (half the grace period) ran the check before
    # the abort, and the stall dump carries the cycle.
    assert det.checks >= 1
    assert len(det.cycles) == 1
    assert exc_info.value.diagnostics["waits_for_cycles"] == det.cycles
    reasons = {
        ev.args["reason"] for ev in events if ev.name == "deadlock.cycle"
    }
    assert "watchdog-warning" in reasons


def test_healthy_run_records_no_cycles():
    bus = Instrument()
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=1, lock="ticket", seed=6, obs=bus,
    ))
    det = DeadlockDetector(cl).attach()

    def sender(th):
        yield from th.send(1, 256, tag=0)

    def recver(th):
        yield from th.recv(source=0, nbytes=256, tag=0)

    cl.run_workload([sender(cl.thread(0, 0)), recver(cl.thread(1, 0))])
    assert det.cycles == []
    assert det.checks == 0  # no failure path ever fired


# ----------------------------------------------------------------------
# OrderWitness
# ----------------------------------------------------------------------
def test_order_witness_records_nested_grant_edges(sim, machine, costs):
    bus = Instrument()
    witness = OrderWitness().attach(bus)
    sim.obs = bus
    outer = TicketLock(sim, costs, name="outer@rank0")
    inner = TicketLock(sim, costs, name="inner@rank0")
    (ctx,) = make_threads(machine, 1)

    def nested():
        yield from outer.acquire(ctx)
        yield from inner.acquire(ctx)
        inner.release(ctx)
        outer.release(ctx)
        # Reverse nesting is a distinct edge.
        yield from inner.acquire(ctx)
        yield from outer.acquire(ctx)
        outer.release(ctx)
        inner.release(ctx)

    sim.process(nested())
    sim.run()
    # Rank decorations are stripped to the witness family.
    assert witness.edges == {
        ("outer", "inner"): 1,
        ("inner", "outer"): 1,
    }
    assert witness.names[("outer", "inner")] == ("outer@rank0", "inner@rank0")


def test_order_witness_ignores_unheld_grants(sim, machine, costs):
    bus = Instrument()
    witness = OrderWitness().attach(bus)
    sim.obs = bus
    lock = TicketLock(sim, costs, name="solo")
    (ctx,) = make_threads(machine, 1)

    def plain():
        yield from lock.acquire(ctx)
        lock.release(ctx)

    sim.process(plain())
    sim.run()
    assert witness.edges == {}


# ----------------------------------------------------------------------
# The acceptance gate: observed edges on fig_vci match the static graph
# ----------------------------------------------------------------------
def test_fig_vci_witness_confirms_static_edges_no_runtime_only():
    import repro

    witness, result = run_order_witness("fig_vci", quick=True, seed=0)
    assert result.ok, result.failed_checks()
    static = run_deadcheck([str(next(iter(repro.__path__)))])
    gaps = classify_witness(static, witness.edges)
    assert gaps == [], [f.message for f in gaps]
    assert static.runtime_only == []
    # The priority lock's composition edges are both confirmed live.
    assert (
        "PriorityTicketLock.ticket_h", "PriorityTicketLock.ticket_b",
    ) in static.confirmed
    assert (
        "PriorityTicketLock.ticket_l", "PriorityTicketLock.ticket_b",
    ) in static.confirmed
