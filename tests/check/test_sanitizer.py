"""simsan: the lockset sanitizer must flag planted unlocked accesses,
stay silent on disciplined traffic, and never perturb the schedule."""

import pytest

from repro.check.sanitize import LocksetSanitizer, sanitize_experiment
from repro.mpi import Cluster, ClusterConfig
from repro.mpi.envelope import ANY_SOURCE, ANY_TAG
from repro.obs import Instrument


def _sanitized_cluster(**kw):
    bus = Instrument()
    san = LocksetSanitizer().attach(bus)
    cl = Cluster(ClusterConfig(obs=bus, **kw))
    return cl, san


# ----------------------------------------------------------------------
# Negative path: the planted unlocked access MUST be flagged
# ----------------------------------------------------------------------
def test_unlocked_progress_poll_is_flagged():
    cl, san = _sanitized_cluster(n_nodes=2, threads_per_rank=1, seed=3)
    rt1 = cl.runtimes[1]
    dom = rt1.domains[0]

    def send_side(th):
        yield from th.send(1, 256, tag=0)

    def rogue(ctx):
        # Busy-wait for the eager packet, then drain the NIC queue and
        # touch the matching queues WITHOUT acquiring the domain lock.
        while not dom.recv_q:
            yield cl.sim.timeout(1e-7)
        yield from rt1._progress_poll(dom, ctx)

    recv_ctx = cl.thread(1, 0).ctx
    cl.run_workload([send_side(cl.thread(0, 0)), rogue(recv_ctx)])

    assert not san.ok
    flagged_states = {v.state for v in san.violations}
    # The NIC receive queue and at least one matching queue were
    # touched lock-free.
    assert "recv_q.d0" in flagged_states
    assert {"posted_q.d0", "unexp_q.d0"} & flagged_states
    v = san.violations[0]
    assert v.held == ()  # nothing held: the exact bug simsan exists for
    assert v.rank == 1 and v.tid == recv_ctx.tid
    assert v.guards  # the cell had a declared protection domain
    report = san.report()
    assert "violation" in report and "recv_q.d0" in report


def test_locked_progress_poll_is_clean():
    # Control for the rogue test: the same drain through the sanctioned
    # locked path reports nothing.
    cl, san = _sanitized_cluster(n_nodes=2, threads_per_rank=1, seed=3)

    def send_side(th):
        yield from th.send(1, 256, tag=0)

    def recv_side(th):
        yield from th.recv(source=0, nbytes=256, tag=0)

    cl.run_workload([send_side(cl.thread(0, 0)), recv_side(cl.thread(1, 0))])
    assert san.ok, san.report()
    assert san.total_accesses > 0


# ----------------------------------------------------------------------
# Disciplined traffic over every protocol shape stays clean
# ----------------------------------------------------------------------
def test_sharded_rndv_and_wildcard_traffic_is_clean():
    cl, san = _sanitized_cluster(
        n_nodes=2, threads_per_rank=2, cs="per-vci:2", lock="ticket", seed=4,
    )

    def sender(th, i):
        yield from th.send(1, 256, tag=i)           # eager, routed
        yield from th.send(1, 100_000, tag=10 + i)  # rendezvous

    def recver(th, i):
        yield from th.recv(source=0, nbytes=256, tag=i)
        # Spanning wildcard: posted to every domain, first match claims,
        # owner frees the stale postings lock-free (exempt by design).
        yield from th.recv(source=ANY_SOURCE, nbytes=100_000, tag=ANY_TAG)

    cl.run_workload(
        [sender(cl.thread(0, i), i) for i in range(2)]
        + [recver(cl.thread(1, i), i) for i in range(2)]
    )
    assert san.ok, san.report()
    # All cell families were actually observed (the run exercised eager,
    # rndv handshake and request-table accesses).
    states = {c.state.split("[")[0].split(".")[0] for c in san.cells.values()}
    assert {"recv_q", "posted_q", "unexp_q", "requests",
            "pending_sends"} <= states


# ----------------------------------------------------------------------
# Observation-only: identical schedules with and without simsan
# ----------------------------------------------------------------------
def _drive(obs):
    cl = Cluster(ClusterConfig(
        n_nodes=2, threads_per_rank=2, lock="ticket", cs="per-vci:2",
        seed=7, obs=obs,
    ))

    def sender(th, i):
        for k in range(4):
            size = 40_000 if k % 2 else 256
            yield from th.send(1, size, tag=i * 10 + k)

    def recver(th, i):
        for k in range(4):
            size = 40_000 if k % 2 else 256
            yield from th.recv(source=0, nbytes=size, tag=i * 10 + k)

    cl.run_workload(
        [sender(cl.thread(0, i), i) for i in range(2)]
        + [recver(cl.thread(1, i), i) for i in range(2)]
    )
    rt = cl.runtimes[1]
    return (cl.sim.now, cl.sim.dispatched, rt.stats.completed,
            rt.stats.freed, rt.stats.progress_polls)


def test_sanitizer_is_schedule_neutral():
    baseline = _drive(None)
    bus = Instrument()
    san = LocksetSanitizer().attach(bus)
    sanitized = _drive(bus)
    assert sanitized == baseline  # bit-identical clock and event count
    assert san.ok and san.total_accesses > 0


def test_bare_bus_is_schedule_neutral():
    # A bus with no sanitizer attached must also leave the schedule
    # untouched (the wants("check") fast path).
    baseline = _drive(None)
    assert _drive(Instrument()) == baseline


# ----------------------------------------------------------------------
# Registered experiments in quick mode report zero violations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["fig_vci", "fig3c"])
def test_quick_experiments_are_clean(name):
    out = sanitize_experiment(name, quick=True, seed=1)
    san = out.sanitizer
    assert san.ok, san.report()
    assert san.total_accesses > 0
    assert out.result.ok, out.result.failed_checks()
