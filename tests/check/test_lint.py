"""simlint: every rule has a fixture that triggers it and one that
passes, plus suppression and CLI exit-code coverage."""

from pathlib import Path

import pytest

from repro.check.lint import RULES, LintError, format_findings, run_lint
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

#: rule -> (fixture that must trigger it, fixture that must not).
RULE_FIXTURES = {
    "unseeded-rng": ("rng_bad.py", "rng_good.py"),
    "wall-clock": ("wallclock_bad.py", "wallclock_good.py"),
    "yield-discipline": ("yield_bad.py", "yield_good.py"),
    "lock-pairing": ("lockpair_bad.py", "lockpair_good.py"),
    "slots-complete": ("slots_bad.py", "slots_good.py"),
    "obs-category": ("obscat_bad.py", "obscat_good.py"),
    "broad-except": ("broadexcept_bad.py", "broadexcept_good.py"),
    "queue-encapsulation": ("queueenc_bad.py", "queueenc_good.py"),
    "continuation-discipline": ("contdisc_bad.py", "contdisc_good.py"),
}


def test_every_rule_has_fixtures():
    assert set(RULE_FIXTURES) == set(RULES)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_triggers_on_bad_fixture(rule):
    bad, _good = RULE_FIXTURES[rule]
    findings = run_lint([str(FIXTURES / bad)], select=[rule])
    assert findings, f"{rule} missed every violation in {bad}"
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_passes_on_good_fixture(rule):
    _bad, good = RULE_FIXTURES[rule]
    findings = run_lint([str(FIXTURES / good)], select=[rule])
    assert findings == [], format_findings(findings)


def test_bad_fixtures_trigger_only_their_own_rule():
    # Cross-check: running ALL rules over a bad fixture must not drag
    # in findings from unrelated rules (rule independence).
    for rule, (bad, _good) in RULE_FIXTURES.items():
        findings = run_lint([str(FIXTURES / bad)])
        rules_hit = {f.rule for f in findings}
        assert rule in rules_hit
        assert rules_hit <= {rule}, (
            f"{bad} unexpectedly triggered {rules_hit - {rule}}"
        )


# ----------------------------------------------------------------------
# Details the fixtures pin down
# ----------------------------------------------------------------------
def test_lockpair_reports_both_shapes():
    findings = run_lint([str(FIXTURES / "lockpair_bad.py")])
    msgs = " | ".join(f.message for f in findings)
    assert "returns with a lock still held" in msgs
    assert "never releases" in msgs
    assert len(findings) == 2


def test_slots_names_the_missing_attribute():
    findings = run_lint([str(FIXTURES / "slots_bad.py")])
    flagged = {f.message.split()[0] for f in findings}
    assert flagged == {"Leaky.c", "Child.extra"}


def test_contdisc_covers_deadline_timer_callbacks():
    # The deadline-expiry machinery registers callbacks via
    # sim.call_after and DeadlineTimer.arm; both run in the same
    # no-blocking dispatch context as completion continuations, and the
    # rule must see all three registration points.
    findings = run_lint(
        [str(FIXTURES / "contdisc_deadline_bad.py")],
        select=["continuation-discipline"],
    )
    assert len(findings) == 3
    assert {f.rule for f in findings} == {"continuation-discipline"}
    msgs = " | ".join(f.message for f in findings)
    assert "'call_after'" in msgs
    assert "'arm'" in msgs


def test_contdisc_deadline_good_fixture_is_clean():
    findings = run_lint(
        [str(FIXTURES / "contdisc_deadline_good.py")],
    )
    assert findings == [], format_findings(findings)


def test_contdisc_resolves_self_methods_and_local_defs():
    # Satellite of the call-graph layer: callbacks registered as
    # ``self.method`` or a locally-defined ``def`` resolve to their
    # definitions, so blocking ops inside them are caught.
    findings = run_lint(
        [str(FIXTURES / "contdisc_resolve_bad.py")],
        select=["continuation-discipline"],
    )
    assert len(findings) == 2
    msgs = " | ".join(f.message for f in findings)
    assert "'waitall'" in msgs and "'waitany'" in msgs


def test_contdisc_resolve_good_fixture_is_clean():
    findings = run_lint([str(FIXTURES / "contdisc_resolve_good.py")])
    assert findings == [], format_findings(findings)


def test_contdisc_resolve_fixtures_trigger_only_their_own_rule():
    findings = run_lint([str(FIXTURES / "contdisc_resolve_bad.py")])
    assert {f.rule for f in findings} == {"continuation-discipline"}


def test_suppression_comments_silence_findings():
    findings = run_lint([str(FIXTURES / "suppressed.py")])
    assert findings == [], format_findings(findings)


def test_suppression_is_rule_scoped():
    # The same violations *without* the matching rule selected-out
    # would fire: prove the comments are doing the silencing.
    src = (FIXTURES / "suppressed.py").read_text()
    assert src.count("simlint: disable") == 3
    stripped = FIXTURES / "_stripped_tmp.py"
    try:
        stripped.write_text(
            "\n".join(line.split("#")[0] for line in src.splitlines())
        )
        findings = run_lint([str(stripped)])
        assert {f.rule for f in findings} == {"wall-clock", "yield-discipline"}
    finally:
        stripped.unlink()


def test_unknown_rule_raises():
    with pytest.raises(LintError, match="unknown rule"):
        run_lint([str(FIXTURES / "rng_good.py")], select=["no-such-rule"])


def test_bad_path_raises():
    with pytest.raises(LintError, match="no such file"):
        run_lint([str(FIXTURES / "missing.py")])


def test_unreadable_file_is_a_diagnostic_not_a_traceback(tmp_path):
    p = tmp_path / "binary.py"
    p.write_bytes(b"\xff\xfe\x00 not utf-8")
    with pytest.raises(LintError, match="cannot read"):
        run_lint([str(p)])


def test_syntax_error_is_a_diagnostic_not_a_traceback(tmp_path):
    p = tmp_path / "broken.py"
    p.write_text("def oops(:\n")
    with pytest.raises(LintError, match="cannot parse"):
        run_lint([str(p)])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_clean_tree_exits_zero():
    import repro

    src_root = str(next(iter(repro.__path__)))
    assert main(["lint", src_root]) == 0


def test_cli_lint_findings_exit_one(capsys):
    assert main(["lint", str(FIXTURES / "rng_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "unseeded-rng" in out


def test_cli_lint_select(capsys):
    path = str(FIXTURES / "rng_bad.py")
    assert main(["lint", path, "--select", "wall-clock"]) == 0
    assert main(["lint", path, "--select", "bogus"]) == 2


def test_cli_lint_exclude_skips_directory(capsys):
    # tests/check contains the deliberately-bad fixtures; excluding the
    # fixtures dir must leave the tree clean (this is how CI lints tests/).
    root = str(FIXTURES.parent)
    assert main(["lint", root]) == 1
    capsys.readouterr()
    assert main(["lint", root, "--exclude", str(FIXTURES)]) == 0


def test_cli_lint_exit_two_on_unreadable_and_broken_files(tmp_path, capsys):
    binary = tmp_path / "binary.py"
    binary.write_bytes(b"\xff\xfe junk")
    assert main(["lint", str(binary)]) == 2
    assert "cannot read" in capsys.readouterr().err
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    assert main(["lint", str(broken)]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_lint_json_format(capsys):
    import json

    assert main(
        ["lint", "--format", "json", str(FIXTURES / "rng_bad.py")]
    ) == 1
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(ln) for ln in lines]
    assert records
    for rec in records:
        assert set(rec) == {"path", "line", "col", "rule", "message"}
    assert {r["rule"] for r in records} == {"unseeded-rng"}


def test_cli_lint_json_clean_prints_nothing(capsys):
    assert main(
        ["lint", "--format", "json", str(FIXTURES / "rng_good.py")]
    ) == 0
    assert capsys.readouterr().out.strip() == ""


def test_cli_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
