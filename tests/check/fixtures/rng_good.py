"""Fixture: sanctioned randomness simlint must accept."""
import numpy as np


def draw(sim, seed):
    rng = sim.rng.stream("workload")
    gen = np.random.default_rng(seed)
    ss = np.random.SeedSequence(seed)
    return rng.random(), gen.random(), ss
