"""Pass fixture: continuation callbacks stay O(1) bookkeeping."""


def note_completion(req):
    req.runtime.completed_ids.append(req.req_id)


def install(req, latch, log):
    req.attach_continuation(note_completion)
    req.attach_continuation(latch.fire, sync=True)
    req.attach_continuation(lambda r: log.append(r.req_id))
