"""Fixture: balanced lock usage simlint must accept."""


def straight_line(lock, ctx):
    yield from lock.acquire(ctx)
    lock.release(ctx)
    return 1


def branch_entry(lock, ctx, fast):
    if fast:
        yield from lock.acquire(ctx)
    else:
        yield from lock.acquire(ctx, priority=1)
    lock.release(ctx)


def finally_guarded(lock, ctx, cond):
    yield from lock.acquire(ctx)
    try:
        if cond:
            return 1
        return 2
    finally:
        lock.release(ctx)


def loop_balanced(lock, ctx, n):
    for _ in range(n):
        yield from lock.acquire(ctx)
        lock.release(ctx)


def gap_wrapper(lock, ctx):
    # Release-first wrappers (re-acquire gap around a payload copy,
    # as in MpiRuntime._charge_copy) deliberately end one acquire up.
    lock.release(ctx)
    yield copy_done()
    yield from lock.acquire(ctx)
