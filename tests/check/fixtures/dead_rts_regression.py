"""Regression fixture (deadcheck): the PR-9 ablation deadlock shape.

A rendezvous send parks on a CTS latch while still holding the
arbitration-domain lock, with the wait buried two ``self``-method calls
deep.  Finding this requires resolving ``self._await_cts`` ->
``self._retry_rts`` through the class body and scoping
``self.dom_lock`` to the class -- exactly what the PR-9 bug needed and
what an intraprocedural rule cannot see.
"""


class RtsSender:
    def __init__(self, dom_lock, cts_latch):
        self.dom_lock = dom_lock
        self.cts_latch = cts_latch

    def _retry_rts(self, ctx):
        yield from self.cts_latch.wait()

    def _await_cts(self, ctx):
        yield from self._retry_rts(ctx)

    def send_rendezvous(self, ctx):
        yield from self.dom_lock.acquire(ctx)
        yield from self._await_cts(ctx)
        self.dom_lock.release(ctx)
