"""Trigger fixture: continuation callbacks that perform blocking ops."""


def resend_on_complete(req):
    # A blocking wait inside a completion callback: the callback is a
    # plain function running in the runtime's dispatch, it can never
    # yield the wait's event.
    req.runtime.waitall(req.ctx, [req])


def install(req, rt, ctx, reqs):
    req.attach_continuation(resend_on_complete)
    req.attach_continuation(lambda r: rt.waitany(ctx, reqs))
