"""Clean fixture: callbacks resolved through the call graph that stay
non-blocking (state flips and list appends only)."""


class Notifier:
    def _mark(self, req):
        req.done = True

    def install(self, req):
        req.attach_continuation(self._mark)


def install_local(req, log):
    def on_done(r):
        log.append(r)

    req.attach_continuation(on_done)
