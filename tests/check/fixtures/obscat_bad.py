"""Fixture: invalid obs categories simlint must flag."""


def emit(obs, rank):
    obs.instant("lokc", "oops", rank=rank)
    obs.counter("network", "depth", 3, rank=rank)
    if obs.wants("simm"):
        obs.span_begin("mpii", "cs.main", rank=rank)
