"""Fixture: valid obs categories simlint must accept."""


def emit(obs, bus, rank, cat):
    obs.instant("lock", "grant", rank=rank)
    bus.counter("net", "depth", 3, rank=rank)
    if obs.wants("mpi"):
        obs.span_begin("mpi", "cs.main", rank=rank)
    obs.instant(cat, "dynamic-category-not-checkable", rank=rank)
    # Same method name on a non-bus receiver is out of scope.
    self_made.instant("whatever", "x")


class _Stub:
    def instant(self, *a, **k):
        pass


self_made = _Stub()
