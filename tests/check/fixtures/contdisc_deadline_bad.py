"""Trigger fixture: deadline-expiry timer callbacks that block.

The deadline-expiry path registers callbacks through ``sim.call_after``
and ``DeadlineTimer.arm``; both fire in the engine's dispatch loop,
the same no-blocking context as completion continuations.
"""


def expire_and_reap(th, rec):
    # Blocking cancellation inside a timer callback: the callback is
    # not a sim process, the wait's event can never be yielded.
    th.waitall([r for _s, r in rec.attempts])


def install(sim, timer, th, rec, deadline_s, lock):
    sim.call_after(250e-6, expire_and_reap, th, rec)
    timer.arm(deadline_s, expire_and_reap, th, rec)
    timer.arm(deadline_s, lambda: lock.acquire())
