"""Fixture: queue access through the public surface simlint must accept."""


def schedule_and_inspect(sim):
    ev = sim.timeout(5e-9, name="probe")
    handle = sim.call_after(1e-9, print, "tick")
    handle.cancel()
    stats = sim.queue.stats()
    return ev, stats, sim.queued_events, sim.dead_events, sim.heap_size


def drain(queue):
    batch = queue.pop_batch()
    queue.push(0.0, 0, batch)
    return queue.live, queue.dead, queue.size, queue.skipped
