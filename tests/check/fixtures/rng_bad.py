"""Fixture: every form of unseeded randomness simlint must flag."""
import random

import numpy as np


def draw():
    a = random.random()
    b = random.randint(0, 7)
    c = np.random.rand(3)
    d = np.random.default_rng()
    return a, b, c, d
