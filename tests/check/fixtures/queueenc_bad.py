"""Fixture: every queue-internal touch simlint must flag."""
import heapq
from heapq import heappush


def sneak_past_the_interface(sim):
    # Scheduling around the EventQueue API: heap-era attribute pokes.
    heappush(sim._heap, (0.0, 0, None))
    heapq.heappop(sim._heap)
    sim._pool.clear()
    sim._push(0.0, next(sim._seq), None)
    return sim.queue._dead


def poke_calendar_state(queue):
    queue._buckets.clear()
    queue._cur = 0
    width = queue._inv_width
    queue._grow_at = 1 << 30
    return width
