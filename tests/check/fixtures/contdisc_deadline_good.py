"""Pass fixture: deadline-expiry timer callbacks stay O(1) bookkeeping
and wake a real process that does the blocking cancellation."""


def on_deadline(st, rec):
    st.actions.append(("due", rec))
    st.wake.fire()


def install(sim, timer, st, rec, deadline_s):
    sim.call_after(250e-6, on_deadline, st, rec)
    timer.arm(deadline_s, on_deadline, st, rec)
    timer.arm(deadline_s, lambda: st.wake.fire())
