"""Trigger fixture: continuation callbacks that need call-graph
resolution -- a bound ``self`` method and a locally-defined ``def`` --
each reaching a blocking op."""


class Retrier:
    def _resend(self, req):
        req.runtime.waitall(req.ctx, [req])

    def install(self, req):
        req.attach_continuation(self._resend)


def install_local(req, rt, ctx, reqs):
    def on_done(_r):
        rt.waitany(ctx, reqs)

    req.attach_continuation(on_done)
