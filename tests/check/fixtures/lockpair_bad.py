"""Fixture: unbalanced lock usage simlint must flag."""


def leaks_on_return(lock, ctx, cond):
    yield from lock.acquire(ctx)
    if cond:
        return 1
    lock.release(ctx)
    return 0


def never_unlocks(lock, ctx):
    yield from lock.acquire(ctx)
    yield from do_work()


def do_work():
    yield make_event()
