"""Fixture: literal-value yields simlint must flag."""


def bad_process(sim):
    yield 42
    yield "not an event"
    yield (1, 2)
