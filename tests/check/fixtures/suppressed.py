"""Fixture: every violation here carries a suppression comment."""
import time


def stamp():
    t0 = time.time()  # simlint: disable=wall-clock
    t1 = time.perf_counter()  # simlint: disable=all
    return t0, t1


def bad_yield():
    yield 42  # simlint: disable=yield-discipline
