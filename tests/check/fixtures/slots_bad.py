"""Fixture: __slots__ gaps simlint must flag."""


class Leaky:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = 1
        self.b = 2
        self.c = 3


class Child(Leaky):
    __slots__ = ("d",)

    def reset(self):
        self.d = 0
        self.extra = None
