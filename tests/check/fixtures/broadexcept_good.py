"""Fixture: acceptable exception handling simlint must accept."""


def reraises(fn):
    try:
        fn()
    except Exception:
        raise RuntimeError("wrapped")


def examines(fn, log):
    try:
        fn()
    except BaseException as exc:
        log.append(exc)


def narrow(fn):
    try:
        fn()
    except ValueError:
        pass
