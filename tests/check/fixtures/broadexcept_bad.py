"""Fixture: swallowing broad handlers simlint must flag."""


def swallow_all(fn):
    try:
        fn()
    except Exception:
        pass


def swallow_bare(fn):
    try:
        fn()
    except:  # noqa: E722
        return None
