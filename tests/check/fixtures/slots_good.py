"""Fixture: complete __slots__ simlint must accept."""


class Tight:
    __slots__ = ("a", "b")

    def __init__(self):
        self.a = 1
        self.b = 2


class Child(Tight):
    __slots__ = ("c",)

    def __init__(self):
        super().__init__()
        self.c = 3
        self.a += 1


class NoSlots:
    def __init__(self):
        self.anything = True


class DynamicSlots:
    # Unresolvable slots: the rule must stay silent, not guess.
    __slots__ = tuple("xy")

    def __init__(self):
        self.z = 1
