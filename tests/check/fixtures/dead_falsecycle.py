"""Clean fixture (deadcheck): a would-be ABBA cycle broken by a
``try/finally`` release.

``first`` releases ``lock_a`` in a ``finally`` before the helper that
acquires ``lock_b`` runs, so the only surviving edge is
``lock_b -> lock_a`` from ``second`` -- no cycle.  An analysis that
ignores must-release facts would report a deadlock here.
"""


def _grab_b(ctx, lock_b):
    yield from lock_b.acquire(ctx)
    lock_b.release(ctx)


def first(ctx, lock_a, lock_b):
    yield from lock_a.acquire(ctx)
    try:
        ctx.work()
    finally:
        lock_a.release(ctx)
    yield from _grab_b(ctx, lock_b)


def second(ctx, lock_a, lock_b):
    yield from lock_b.acquire(ctx)
    yield from lock_a.acquire(ctx)
    lock_a.release(ctx)
    lock_b.release(ctx)
