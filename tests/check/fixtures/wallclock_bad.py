"""Fixture: host-clock reads simlint must flag."""
import time
from datetime import datetime


def stamp():
    t0 = time.time()
    t1 = time.perf_counter()
    t2 = datetime.now()
    return t0, t1, t2
