"""Fixture: legal yields simlint must accept."""


def good_process(sim, lock, ctx):
    yield sim.timeout(1e-6)
    yield from lock.acquire(ctx)
    lock.release(ctx)
    yield sim.event()


def generator_marker():
    # The bare-yield-after-return idiom that marks a function as a
    # generator (NullLock.acquire) is legal.
    return
    yield
