"""Trigger fixture (deadcheck): classic ABBA lock-order cycle.

Two entry points take the same pair of locks in opposite orders; a
thread in each can hold what the other waits for.
"""


def path_one(ctx, lock_a, lock_b):
    yield from lock_a.acquire(ctx)
    yield from lock_b.acquire(ctx)
    lock_b.release(ctx)
    lock_a.release(ctx)


def path_two(ctx, lock_a, lock_b):
    yield from lock_b.acquire(ctx)
    yield from lock_a.acquire(ctx)
    lock_a.release(ctx)
    lock_b.release(ctx)
