"""Trigger fixture (deadcheck): a blocking wait two calls deep while a
lock acquired by the entry function is still held.

Neither intermediate function touches the lock, so an intraprocedural
scan sees nothing -- only the call-graph splice pairs the entry's held
set with the leaf's ``wait``.
"""


def _park(ctx, latch):
    yield from latch.wait()


def _drain(ctx, latch):
    yield from _park(ctx, latch)


def entry(ctx, dom_lock, latch):
    yield from dom_lock.acquire(ctx)
    yield from _drain(ctx, latch)
    dom_lock.release(ctx)
