"""Fixture: simulated-clock reads simlint must accept."""


def stamp(sim):
    t0 = sim.now
    yield sim.timeout(1e-6)
    return sim.now - t0
