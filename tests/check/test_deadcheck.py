"""deadcheck's static half: seeded cycles and buried blocking ops are
flagged, must-release reasoning kills the false cycle, the shipped tree
is clean, and the CLI honours the shared exit-code/format contract."""

import json
from pathlib import Path

import pytest

from repro.check.deadcheck import (
    DeadcheckError,
    classify_witness,
    format_report,
    run_deadcheck,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _run(*names):
    return run_deadcheck([str(FIXTURES / n) for n in names])


# ----------------------------------------------------------------------
# Seeded hazards are flagged
# ----------------------------------------------------------------------
def test_abba_cycle_is_flagged():
    result = _run("dead_cycle.py")
    assert [f.rule for f in result.findings] == ["lock-order-cycle"]
    assert result.cycles == [("lock_a", "lock_b")]
    msg = result.findings[0].message
    assert "lock_a -> lock_b" in msg and "lock_b -> lock_a" in msg


def test_blocking_two_calls_deep_is_flagged():
    result = _run("dead_blocking_deep.py")
    assert [f.rule for f in result.findings] == ["blocking-under-cs"]
    f = result.findings[0]
    # Anchored at the call in entry() that reaches the wait, naming the
    # held lock and the splice chain.
    assert "dom_lock" in f.message
    assert "_drain" in f.message
    assert f.line == 20


def test_rts_regression_shape_is_flagged():
    # The PR-9 ablation deadlock: a latch wait two self-method calls
    # deep while the class-scoped domain lock is held.
    result = _run("dead_rts_regression.py")
    assert [f.rule for f in result.findings] == ["blocking-under-cs"]
    f = result.findings[0]
    assert "RtsSender.dom_lock" in f.message
    assert "_await_cts" in f.message


def test_try_finally_release_breaks_false_cycle():
    result = _run("dead_falsecycle.py")
    assert result.findings == [], format_report(result, result.findings)
    # The surviving edge is only second()'s b -> a: first()'s finally
    # released lock_a before the helper acquired lock_b.
    pairs = {(e.held.ident, e.acq.ident) for e in result.edges}
    assert pairs == {("lock_b", "lock_a")}


def test_suppression_comment_silences_deadcheck(tmp_path):
    src = (FIXTURES / "dead_cycle.py").read_text()
    waived = src.replace(
        "    yield from lock_b.acquire(ctx)\n"
        "    yield from lock_a.acquire(ctx)",
        "    yield from lock_b.acquire(ctx)\n"
        "    yield from lock_a.acquire(ctx)"
        "  # simcheck: disable=lock-order-cycle",
        1,
    )
    assert "disable" in waived
    p = tmp_path / "waived.py"
    p.write_text(waived)
    result = run_deadcheck([str(p)])
    assert result.findings == []


# ----------------------------------------------------------------------
# The shipped tree is clean (the baseline CI enforces)
# ----------------------------------------------------------------------
def test_whole_source_tree_is_clean():
    import repro

    result = run_deadcheck([str(next(iter(repro.__path__)))])
    assert result.findings == [], format_report(result, result.findings)
    assert result.n_functions > 500
    # The priority lock's composition edges are found, class-scoped.
    pairs = {(e.held.family, e.acq.family) for e in result.edges}
    assert (
        "PriorityTicketLock.ticket_h", "PriorityTicketLock.ticket_b",
    ) in pairs
    assert (
        "PriorityTicketLock.ticket_l", "PriorityTicketLock.ticket_b",
    ) in pairs


# ----------------------------------------------------------------------
# Witness classification
# ----------------------------------------------------------------------
def test_classify_witness_partitions_edges():
    result = _run("dead_falsecycle.py")  # one static edge: b -> a
    findings = classify_witness(
        result,
        {("lock_b", "lock_a"): 3, ("ghost_x", "ghost_y"): 1},
    )
    assert result.confirmed == [("lock_b", "lock_a")]
    assert result.unwitnessed == []
    assert result.runtime_only == [("ghost_x", "ghost_y")]
    assert [f.rule for f in findings] == ["order-witness-gap"]
    assert "ghost_x -> ghost_y" in findings[0].message
    report = format_report(result, findings)
    assert "1 confirmed" in report and "1 runtime-only" in report


def test_classify_witness_unwitnessed_static_edge():
    result = _run("dead_falsecycle.py")
    findings = classify_witness(result, {})
    assert result.confirmed == []
    assert result.unwitnessed == [("lock_b", "lock_a")]
    assert findings == []


# ----------------------------------------------------------------------
# Errors (exit-code-2 paths) -- diagnostics, never tracebacks
# ----------------------------------------------------------------------
def test_missing_path_raises_deadcheck_error():
    with pytest.raises(DeadcheckError, match="no such file"):
        run_deadcheck(["nope/missing.py"])


def test_unreadable_file_raises_deadcheck_error(tmp_path):
    p = tmp_path / "binary.py"
    p.write_bytes(b"\xff\xfe junk")
    with pytest.raises(DeadcheckError, match="cannot read"):
        run_deadcheck([str(p)])


def test_syntax_error_raises_deadcheck_error(tmp_path):
    p = tmp_path / "broken.py"
    p.write_text("def oops(:\n")
    with pytest.raises(DeadcheckError, match="cannot parse"):
        run_deadcheck([str(p)])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_deadcheck_findings_exit_one(capsys):
    assert main(["deadcheck", str(FIXTURES / "dead_cycle.py")]) == 1
    out = capsys.readouterr().out
    assert "lock-order-cycle" in out and "finding" in out


def test_cli_deadcheck_clean_exit_zero(capsys):
    assert main(["deadcheck", str(FIXTURES / "dead_falsecycle.py")]) == 0
    assert "deadcheck: clean" in capsys.readouterr().out


def test_cli_deadcheck_bad_path_exit_two(capsys):
    assert main(["deadcheck", "nope/missing.py"]) == 2
    assert "deadcheck: error" in capsys.readouterr().err


def test_cli_deadcheck_json_format(capsys):
    assert main(
        ["deadcheck", "--format", "json", str(FIXTURES / "dead_cycle.py")]
    ) == 1
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(ln) for ln in lines]
    assert records, "json mode printed no records"
    for rec in records:
        assert set(rec) == {"path", "line", "col", "rule", "message"}
    assert {r["rule"] for r in records} == {"lock-order-cycle"}


def test_cli_deadcheck_json_clean_prints_nothing(capsys):
    assert main(
        ["deadcheck", "--format", "json",
         str(FIXTURES / "dead_falsecycle.py")]
    ) == 0
    assert capsys.readouterr().out.strip() == ""
